#include "src/nvm/pmem_device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "src/common/rand.h"

namespace jnvm::nvm {

PmemDevice::PmemDevice(const DeviceOptions& opts)
    : opts_(opts), data_(new char[opts.size_bytes]()) {
  JNVM_CHECK(opts.size_bytes >= kCacheLine);
}

PmemDevice::PmemDevice(const DeviceOptions& opts, char* mapped_base)
    : opts_(opts), data_(mapped_base), mmapped_(true) {
  JNVM_CHECK(opts.size_bytes >= kCacheLine);
}

PmemDevice::~PmemDevice() {
  if (mmapped_) {
    ::munmap(data_, opts_.size_bytes);
  } else {
    delete[] data_;
  }
  data_ = nullptr;
}

std::unique_ptr<PmemDevice> PmemDevice::MapFile(const std::string& path,
                                                DeviceOptions opts,
                                                bool* existed,
                                                std::string* error) {
  if (existed != nullptr) {
    *existed = false;
  }
  if (opts.strict) {
    if (error != nullptr) *error = "dax mode is incompatible with strict mode";
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = "open " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) *error = "fstat " + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  if (st.st_size == 0) {
    // Fresh region: size it; the caller will Format.
    if (opts.size_bytes < kCacheLine ||
        ::ftruncate(fd, static_cast<off_t>(opts.size_bytes)) != 0) {
      if (error != nullptr) {
        *error = "ftruncate " + path + ": " + std::strerror(errno);
      }
      ::close(fd);
      return nullptr;
    }
  } else {
    // Existing region: its size wins; the caller should run recovery.
    opts.size_bytes = static_cast<size_t>(st.st_size);
    if (existed != nullptr) {
      *existed = true;
    }
  }
  void* base = ::mmap(nullptr, opts.size_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = "mmap " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(opts, static_cast<char*>(base)));
}

void PmemDevice::Memset(Offset off, int value, size_t n) {
  JNVM_DCHECK(off + n <= opts_.size_bytes);
  if (powered_off_) {
    return;
  }
  if (opts_.strict) {
    CrashTick();
    TrackStore(off, n, nullptr, static_cast<uint64_t>(value));
  }
  std::memset(data_ + off, value, n);
  stats_writes_.fetch_add(1, std::memory_order_relaxed);
  stats_bytes_written_.fetch_add(n, std::memory_order_relaxed);
}

namespace {

// Folds `n` bytes into a trace digest, 8 bytes at a time.
uint64_t HashBytes(uint64_t h, const void* p, size_t n) {
  const char* s = static_cast<const char*>(p);
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, s, 8);
    h = Mix64(h ^ w);
    s += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t w = 0;
    std::memcpy(&w, s, n);
    h = Mix64(h ^ w ^ (static_cast<uint64_t>(n) << 56));
  }
  return h;
}

}  // namespace

void PmemDevice::TraceNote(uint64_t kind, uint64_t a, uint64_t b) {
  trace_hash_ = Mix64(trace_hash_ ^ (kind + (a << 3))) ^ Mix64(b);
}

void PmemDevice::TrackStore(Offset off, size_t n, const void* src,
                            uint64_t content_tag) {
  TraceNote(1, off, static_cast<uint64_t>(n) ^ content_tag);
  if (src != nullptr) {
    trace_hash_ = HashBytes(trace_hash_, src, n);
  }
  const uint64_t first = off / kCacheLine;
  const uint64_t last = (off + n - 1) / kCacheLine;
  for (uint64_t line = first; line <= last; ++line) {
    auto [it, inserted] = lines_.try_emplace(line);
    if (inserted) {
      // First store since the line was last durable: snapshot the durable
      // content (current view == durable view for a clean line).
      std::memcpy(it->second.durable.data(), data_ + line * kCacheLine,
                  kCacheLine);
    } else if (it->second.queued) {
      // A store after Pwb is not covered by that Pwb: the flush may have
      // executed before this store. Conservatively require a fresh Pwb.
      it->second.queued = false;
    }
  }
}

void PmemDevice::Pwb(Offset off) {
  JNVM_DCHECK(off < opts_.size_bytes);
  if (powered_off_) {
    return;
  }
  stats_pwbs_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.pwb_delay_ns != 0) SpinFor(opts_.pwb_delay_ns);
  if (!opts_.strict) {
    return;
  }
  CrashTick();
  TraceNote(2, off / kCacheLine, 0);
  auto it = lines_.find(off / kCacheLine);
  if (it != lines_.end()) {
    it->second.queued = true;
  }
}

void PmemDevice::PwbRange(Offset off, size_t n) {
  if (n == 0 || powered_off_) {
    return;
  }
  const uint64_t first = (off / kCacheLine) * kCacheLine;
  const uint64_t last = ((off + n - 1) / kCacheLine) * kCacheLine;
  const uint64_t nlines = (last - first) / kCacheLine + 1;
  // Charge the latency model once for the whole range (a clwb burst
  // pipelines); per-line spins would pay the timer-read floor n times.
  if (opts_.pwb_delay_ns != 0) {
    SpinFor(opts_.pwb_delay_ns * nlines);
  }
  stats_pwbs_.fetch_add(nlines, std::memory_order_relaxed);
  if (!opts_.strict) {
    return;
  }
  for (uint64_t line = first; line <= last; line += kCacheLine) {
    CrashTick();
    TraceNote(2, line / kCacheLine, 0);
    auto it = lines_.find(line / kCacheLine);
    if (it != lines_.end()) {
      it->second.queued = true;
    }
  }
}

void PmemDevice::DrainQueued() {
  if (!opts_.strict) {
    return;
  }
  CrashTick();
  TraceNote(3, lines_.size(), 0);
  for (auto it = lines_.begin(); it != lines_.end();) {
    if (it->second.queued) {
      it = lines_.erase(it);  // current content is now durable
    } else {
      ++it;
    }
  }
}

void PmemDevice::Pfence() {
  if (powered_off_) {
    return;
  }
  stats_pfences_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.fence_delay_ns != 0) SpinFor(opts_.fence_delay_ns);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  DrainQueued();
}

void PmemDevice::Psync() {
  if (powered_off_) {
    return;
  }
  stats_psyncs_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.fence_delay_ns != 0) SpinFor(opts_.fence_delay_ns);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  DrainQueued();
}

void PmemDevice::ScheduleCrashAfter(uint64_t events) {
  JNVM_CHECK_MSG(opts_.strict, "crash scheduling requires strict mode");
  crash_countdown_ = static_cast<int64_t>(events);
}

void PmemDevice::CancelScheduledCrash() { crash_countdown_ = -1; }

void PmemDevice::CrashTick() {
  ++event_counter_;
  if (crash_countdown_ < 0) {
    return;
  }
  if (crash_countdown_ == 0) {
    crash_countdown_ = -1;
    // Power is off from this instant until Crash() adjudicates the lines:
    // stores, flushes and fences performed while the SimulatedCrash unwinds
    // (e.g. from RAII guards) must not reach the device — real hardware
    // executes nothing after the failure.
    powered_off_ = true;
    throw SimulatedCrash{event_counter_};
  }
  --crash_countdown_;
}

void PmemDevice::Crash(uint64_t eviction_seed) {
  JNVM_CHECK_MSG(opts_.strict, "Crash() requires strict mode");
  crash_countdown_ = -1;
  powered_off_ = false;  // power returns; recovery may write again
  for (auto& [line, state] : lines_) {
    // Coin flip per line: was it (or the queued flush) written back before
    // power was lost? Queued-but-unfenced lines get the same treatment —
    // without the fence the clwb may not have executed.
    const bool evicted = (Mix64(eviction_seed ^ (line * 0x9e3779b97f4a7c15ull)) & 1) != 0;
    if (!evicted) {
      std::memcpy(data_ + line * kCacheLine, state.durable.data(), kCacheLine);
    }
  }
  lines_.clear();
}

size_t PmemDevice::UnflushedLineCount() const { return lines_.size(); }

namespace {
constexpr uint64_t kImageMagic = 0x4a4e564d494d4731ull;  // "JNVMIMG1"
}

bool PmemDevice::SaveTo(const std::string& path) const {
  if (!lines_.empty()) {
    // Unflushed strict-mode lines: the current view contains state the
    // hardware never guaranteed durable. Refuse rather than bake it in.
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const uint64_t size = opts_.size_bytes;
  bool ok = std::fwrite(&kImageMagic, 8, 1, f) == 1 &&
            std::fwrite(&size, 8, 1, f) == 1 &&
            std::fwrite(data_, 1, size, f) == size;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::unique_ptr<PmemDevice> PmemDevice::LoadFrom(const std::string& path,
                                                 DeviceOptions opts) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return nullptr;
  }
  uint64_t magic = 0;
  uint64_t size = 0;
  if (std::fread(&magic, 8, 1, f) != 1 || magic != kImageMagic ||
      std::fread(&size, 8, 1, f) != 1) {
    std::fclose(f);
    return nullptr;
  }
  opts.size_bytes = size;
  auto dev = std::make_unique<PmemDevice>(opts);
  const bool ok = std::fread(dev->data_, 1, size, f) == size;
  std::fclose(f);
  return ok ? std::move(dev) : nullptr;
}

DeviceStats PmemDevice::stats() const {
  DeviceStats s;
  s.reads = stats_reads_.load(std::memory_order_relaxed);
  s.bytes_read = stats_bytes_read_.load(std::memory_order_relaxed);
  s.writes = stats_writes_.load(std::memory_order_relaxed);
  s.bytes_written = stats_bytes_written_.load(std::memory_order_relaxed);
  s.pwbs = stats_pwbs_.load(std::memory_order_relaxed);
  s.pfences = stats_pfences_.load(std::memory_order_relaxed);
  s.psyncs = stats_psyncs_.load(std::memory_order_relaxed);
  return s;
}

void PmemDevice::ResetStats() {
  stats_reads_.store(0, std::memory_order_relaxed);
  stats_bytes_read_.store(0, std::memory_order_relaxed);
  stats_writes_.store(0, std::memory_order_relaxed);
  stats_bytes_written_.store(0, std::memory_order_relaxed);
  stats_pwbs_.store(0, std::memory_order_relaxed);
  stats_pfences_.store(0, std::memory_order_relaxed);
  stats_psyncs_.store(0, std::memory_order_relaxed);
}

}  // namespace jnvm::nvm
