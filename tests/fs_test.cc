// Tests for the simulated file systems and the FS store backend.
#include <gtest/gtest.h>

#include "src/fs/sim_fs.h"
#include "src/store/fs_backend.h"

namespace jnvm {
namespace {

using fs::FsOptions;
using fs::NullFs;
using fs::NvmFs;
using fs::TmpFs;
using store::FsBackend;
using store::Record;

FsOptions FastOpts() {
  FsOptions o;
  o.syscall_latency_ns = 0;
  return o;
}

TEST(TmpFsTest, ReadBackWrites) {
  TmpFs f(1 << 16, FastOpts());
  const char data[] = "hello";
  f.Pwrite(100, data, sizeof(data));
  char out[sizeof(data)];
  f.Pread(100, out, sizeof(out));
  EXPECT_STREQ(out, "hello");
  EXPECT_EQ(f.stats().writes, 1u);
  EXPECT_EQ(f.stats().reads, 1u);
}

TEST(NvmFsTest, BackedByDevice) {
  nvm::DeviceOptions dopts;
  dopts.size_bytes = 1 << 16;
  nvm::PmemDevice dev(dopts);
  NvmFs f(&dev, 4096, 8192, FastOpts());
  const uint64_t v = 42;
  f.Pwrite(0, &v, 8);
  f.Fsync();
  // Data landed inside the device region.
  EXPECT_EQ(dev.Read<uint64_t>(4096), 42u);
}

TEST(NvmFsTest, SurvivesCrashAfterFsync) {
  nvm::DeviceOptions dopts;
  dopts.size_bytes = 1 << 16;
  dopts.strict = true;
  nvm::PmemDevice dev(dopts);
  NvmFs f(&dev, 0, 1 << 16, FastOpts());
  const uint64_t v = 7;
  f.Pwrite(64, &v, 8);
  f.Fsync();
  dev.Crash(3);
  uint64_t out;
  f.Pread(64, &out, 8);
  EXPECT_EQ(out, 7u);
}

TEST(NullFsTest, ShadowKeepsDataObservable) {
  NullFs f(1 << 16, FastOpts());
  const char data[] = "x";
  f.Pwrite(0, data, 1);
  char out;
  f.Pread(0, &out, 1);
  EXPECT_EQ(out, 'x');
}

// ---- FS backend -------------------------------------------------------------

Record MakeRecord(int tag, size_t nfields = 3, size_t len = 16) {
  Record r;
  for (size_t i = 0; i < nfields; ++i) {
    r.fields.push_back(std::string(len, static_cast<char>('a' + (tag + i) % 26)));
  }
  return r;
}

TEST(FsBackendTest, PutGetDelete) {
  TmpFs f(1 << 20, FastOpts());
  FsBackend b(&f, "FS");
  const Record r = MakeRecord(1);
  b.Put("k1", r);
  Record out;
  ASSERT_TRUE(b.Get("k1", &out));
  EXPECT_EQ(out, r);
  EXPECT_EQ(b.Size(), 1u);
  EXPECT_TRUE(b.Delete("k1"));
  EXPECT_FALSE(b.Get("k1", &out));
  EXPECT_FALSE(b.Delete("k1"));
}

TEST(FsBackendTest, UpdateFieldRewritesRecord) {
  TmpFs f(1 << 20, FastOpts());
  FsBackend b(&f, "FS");
  b.Put("k", MakeRecord(1));
  ASSERT_TRUE(b.UpdateField("k", 1, "NEWVALUE"));
  Record out;
  ASSERT_TRUE(b.Get("k", &out));
  EXPECT_EQ(out.fields[1], "NEWVALUE");
  EXPECT_FALSE(b.UpdateField("missing", 0, "x"));
}

TEST(FsBackendTest, InPlaceRewriteReusesExtent) {
  TmpFs f(1 << 20, FastOpts());
  FsBackend b(&f, "FS");
  b.Put("k", MakeRecord(1));
  const auto writes_before = f.stats().bytes_written;
  b.Put("k", MakeRecord(2));  // same size: in-place
  EXPECT_GT(f.stats().bytes_written, writes_before);
  Record out;
  ASSERT_TRUE(b.Get("k", &out));
  EXPECT_EQ(out, MakeRecord(2));
}

TEST(FsBackendTest, GrowingRecordRelocates) {
  TmpFs f(1 << 20, FastOpts());
  FsBackend b(&f, "FS");
  b.Put("k", MakeRecord(1, 2, 8));
  b.Put("k", MakeRecord(2, 8, 64));  // bigger: relocated
  Record out;
  ASSERT_TRUE(b.Get("k", &out));
  EXPECT_EQ(out, MakeRecord(2, 8, 64));
  EXPECT_EQ(b.Size(), 1u);
}

TEST(FsBackendTest, RebuildIndexRecoversRecords) {
  TmpFs f(1 << 20, FastOpts());
  {
    FsBackend b(&f, "FS");
    for (int i = 0; i < 20; ++i) {
      b.Put("key" + std::to_string(i), MakeRecord(i));
    }
    b.Delete("key7");
    b.Put("key3", MakeRecord(100, 8, 64));  // relocated
  }
  FsBackend fresh(&f, "FS");
  EXPECT_EQ(fresh.RebuildIndex(), 19u);
  Record out;
  EXPECT_FALSE(fresh.Get("key7", &out));
  ASSERT_TRUE(fresh.Get("key3", &out));
  EXPECT_EQ(out, MakeRecord(100, 8, 64));
  ASSERT_TRUE(fresh.Get("key11", &out));
  EXPECT_EQ(out, MakeRecord(11));
}

TEST(FsBackendTest, RebuildOnNvmAfterCrash) {
  nvm::DeviceOptions dopts;
  dopts.size_bytes = 1 << 20;
  dopts.strict = true;
  nvm::PmemDevice dev(dopts);
  {
    NvmFs f(&dev, 0, 1 << 20, FastOpts());
    FsBackend b(&f, "FS");
    for (int i = 0; i < 10; ++i) {
      b.Put("key" + std::to_string(i), MakeRecord(i));
    }
  }
  dev.Crash(5);  // everything was fsynced per Put
  NvmFs f(&dev, 0, 1 << 20, FastOpts());
  FsBackend b(&f, "FS");
  EXPECT_EQ(b.RebuildIndex(), 10u);
  Record out;
  ASSERT_TRUE(b.Get("key4", &out));
  EXPECT_EQ(out, MakeRecord(4));
}

TEST(FsBackendTest, SyscallLatencyCharged) {
  FsOptions slow;
  slow.syscall_latency_ns = 200'000;  // 0.2 ms — measurable
  TmpFs f(1 << 20, slow);
  FsBackend b(&f, "FS");
  const uint64_t t0 = NowNs();
  b.Put("k", MakeRecord(1));  // pwrite + fsync = 2 calls
  EXPECT_GE(NowNs() - t0, 400'000u);
}

}  // namespace
}  // namespace jnvm
