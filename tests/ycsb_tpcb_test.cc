// Tests for the YCSB workload generator/runner and the TPC-B bank,
// including the bank's crash-recovery conservation property (Figure 11's
// correctness side).
#include <gtest/gtest.h>

#include "src/store/volatile_backend.h"
#include "src/tpcb/bank.h"
#include "src/ycsb/runner.h"

namespace jnvm {
namespace {

using store::Record;

// ---- Workload specs -----------------------------------------------------------

TEST(WorkloadSpec, ProportionsMatchPaper) {
  const auto a = ycsb::WorkloadSpec::A();
  EXPECT_DOUBLE_EQ(a.read + a.update, 1.0);
  EXPECT_DOUBLE_EQ(a.update, 0.5);
  const auto b = ycsb::WorkloadSpec::B();
  EXPECT_DOUBLE_EQ(b.read, 0.95);
  const auto c = ycsb::WorkloadSpec::C();
  EXPECT_DOUBLE_EQ(c.read, 1.0);
  const auto d = ycsb::WorkloadSpec::D();
  EXPECT_DOUBLE_EQ(d.insert, 0.05);
  EXPECT_EQ(d.dist, ycsb::Dist::kLatest);
  const auto f = ycsb::WorkloadSpec::F();
  EXPECT_DOUBLE_EQ(f.rmw, 0.5);
}

TEST(WorkloadSpec, DefaultRecordShape) {
  const auto a = ycsb::WorkloadSpec::A();
  EXPECT_EQ(a.record_count, 3'000'000u);
  EXPECT_EQ(a.fields, 10u);
  EXPECT_EQ(a.field_len, 100u);
}

TEST(YcsbKeys, DeterministicAndDistinct) {
  EXPECT_EQ(ycsb::KeyFor(7), ycsb::KeyFor(7));
  EXPECT_NE(ycsb::KeyFor(7), ycsb::KeyFor(8));
  EXPECT_EQ(ycsb::KeyFor(0).rfind("user", 0), 0u);
}

// ---- Runner -------------------------------------------------------------------

struct RunnerFixture {
  RunnerFixture() {
    gc = std::make_unique<gcsim::ManagedHeap>(gcsim::GcOptions{});
    backend = std::make_unique<store::VolatileBackend>(gc.get());
    store::StoreOptions opts;
    opts.cache_ratio = 0.0;
    kv = std::make_unique<store::KvStore>(backend.get(), nullptr, opts);
  }
  std::unique_ptr<gcsim::ManagedHeap> gc;
  std::unique_ptr<store::VolatileBackend> backend;
  std::unique_ptr<store::KvStore> kv;
};

TEST(YcsbRunner, LoadPhaseInsertsAllRecords) {
  RunnerFixture f;
  auto spec = ycsb::WorkloadSpec::A();
  spec.record_count = 500;
  spec.fields = 3;
  spec.field_len = 8;
  ycsb::LoadPhase(f.kv.get(), spec);
  EXPECT_EQ(f.backend->Size(), 500u);
  Record r;
  EXPECT_TRUE(f.kv->Read(ycsb::KeyFor(123), &r));
  EXPECT_EQ(r.fields.size(), 3u);
}

TEST(YcsbRunner, RunPhaseExecutesRequestedOps) {
  RunnerFixture f;
  auto spec = ycsb::WorkloadSpec::A();
  spec.record_count = 200;
  spec.fields = 3;
  spec.field_len = 8;
  ycsb::LoadPhase(f.kv.get(), spec);
  const auto result = ycsb::RunPhase(f.kv.get(), spec, 2000, 1, 7);
  EXPECT_EQ(result.ops, 2000u);
  EXPECT_GT(result.throughput_ops_s, 0.0);
  // ~50/50 split with some statistical slack.
  EXPECT_NEAR(static_cast<double>(result.read.count()) / 2000.0, 0.5, 0.08);
  EXPECT_NEAR(static_cast<double>(result.update.count()) / 2000.0, 0.5, 0.08);
}

TEST(YcsbRunner, WorkloadDInsertsGrowKeySpace) {
  RunnerFixture f;
  auto spec = ycsb::WorkloadSpec::D();
  spec.record_count = 200;
  spec.fields = 2;
  spec.field_len = 8;
  ycsb::LoadPhase(f.kv.get(), spec);
  const auto result = ycsb::RunPhase(f.kv.get(), spec, 3000, 1, 7);
  EXPECT_GT(result.insert.count(), 0u);
  EXPECT_EQ(f.backend->Size(), 200u + result.insert.count());
}

TEST(YcsbRunner, WorkloadFDoesRmw) {
  RunnerFixture f;
  auto spec = ycsb::WorkloadSpec::F();
  spec.record_count = 100;
  spec.fields = 2;
  spec.field_len = 8;
  ycsb::LoadPhase(f.kv.get(), spec);
  const auto result = ycsb::RunPhase(f.kv.get(), spec, 1000, 1, 7);
  EXPECT_GT(result.rmw.count(), 300u);
  EXPECT_EQ(result.rmw.count() + result.read.count(), 1000u);
}

TEST(YcsbRunner, MultiThreadedCompletes) {
  RunnerFixture f;
  auto spec = ycsb::WorkloadSpec::A();
  spec.record_count = 100;
  spec.fields = 2;
  spec.field_len = 8;
  ycsb::LoadPhase(f.kv.get(), spec);
  const auto result = ycsb::RunPhase(f.kv.get(), spec, 4000, 4, 7);
  EXPECT_EQ(result.ops, 4000u);
}

// ---- TPC-B banks -----------------------------------------------------------------

TEST(VolatileBankTest, TransfersConserveTotal) {
  tpcb::VolatileBank bank;
  bank.CreateAccounts(100, 1000);
  Xorshift rng(3);
  for (int i = 0; i < 1000; ++i) {
    bank.Transfer(static_cast<int64_t>(rng.NextBelow(100)),
                  static_cast<int64_t>(rng.NextBelow(100)), 10);
  }
  int64_t total = 0;
  for (int64_t i = 0; i < 100; ++i) {
    total += bank.Balance(i);
  }
  EXPECT_EQ(total, 100 * 1000);
}

TEST(JpfaBankTest, TransfersAndRestart) {
  nvm::DeviceOptions o;
  o.size_bytes = 32 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    tpcb::JpfaBank bank(rt.get());
    bank.CreateAccounts(50, 100);
    bank.Transfer(1, 2, 30);
    EXPECT_EQ(bank.Balance(1), 70);
    EXPECT_EQ(bank.Balance(2), 130);
  }
  auto rt = core::JnvmRuntime::Open(dev.get());
  tpcb::JpfaBank bank(rt.get());
  EXPECT_EQ(bank.NumAccounts(), 50u);
  EXPECT_EQ(bank.Balance(1), 70);
  EXPECT_EQ(bank.Balance(2), 130);
}

// The Figure 11 correctness property: crash mid-stream, recover (with the
// graph GC or the nogc block scan) and the total balance is conserved.
void RunBankCrashSweep(bool graph_recovery) {
  for (uint64_t crash_at : {100u, 400u, 900u, 1600u, 2500u}) {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = true;
    auto dev = std::make_unique<nvm::PmemDevice>(o);
    constexpr int64_t kAccounts = 20;
    constexpr int64_t kInitial = 1000;
    {
      auto rt = core::JnvmRuntime::Format(dev.get());
      tpcb::JpfaBank bank(rt.get());
      bank.CreateAccounts(kAccounts, kInitial);
      rt->Psync();
      dev->ScheduleCrashAfter(crash_at);
      Xorshift rng(crash_at);
      try {
        for (int i = 0; i < 200; ++i) {
          bank.Transfer(static_cast<int64_t>(rng.NextBelow(kAccounts)),
                        static_cast<int64_t>(rng.NextBelow(kAccounts)), 7);
        }
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
    dev->Crash(crash_at + 17);
    core::RuntimeOptions opts;
    opts.graph_recovery = graph_recovery;
    auto rt = core::JnvmRuntime::Open(dev.get(), opts);
    tpcb::JpfaBank bank(rt.get());
    ASSERT_EQ(bank.NumAccounts(), static_cast<uint64_t>(kAccounts));
    int64_t total = 0;
    for (int64_t i = 0; i < kAccounts; ++i) {
      total += bank.Balance(i);
    }
    EXPECT_EQ(total, kAccounts * kInitial)
        << "money lost/created at crash point " << crash_at
        << (graph_recovery ? " (graph)" : " (nogc)");
  }
}

TEST(JpfaBankCrashTest, TotalConservedWithGraphRecovery) { RunBankCrashSweep(true); }

// The nogc recovery is sound for the bank: every allocation is published in
// the same failure-atomic block (§5.3.3).
TEST(JpfaBankCrashTest, TotalConservedWithNogcRecovery) { RunBankCrashSweep(false); }

}  // namespace
}  // namespace jnvm
