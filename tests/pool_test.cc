// Deep tests for the pool allocators (§4.4): size classes, packing,
// occupancy hints, both recovery paths, leak reclamation, and the
// interaction with failure-atomic frees.
#include <gtest/gtest.h>

#include <set>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"
#include "src/pdt/pstring.h"

namespace jnvm::core {
namespace {

struct Fixture {
  explicit Fixture(bool strict = false) {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

nvm::Offset BlockOf(const Fixture& f, const PObject& o) {
  return (o.addr() / f.rt->heap().block_size()) * f.rt->heap().block_size();
}

TEST(PoolDeepTest, SizeClassesSegregate) {
  Fixture f;
  pdt::PString small1(*f.rt, "ab");           // 16 B class
  pdt::PString small2(*f.rt, "cd");
  pdt::PString big1(*f.rt, std::string(80, 'x'));  // 96 B class: 2 slots/block
  pdt::PString big2(*f.rt, std::string(80, 'y'));
  EXPECT_EQ(BlockOf(f, small1), BlockOf(f, small2));
  EXPECT_EQ(BlockOf(f, big1), BlockOf(f, big2));
  EXPECT_NE(BlockOf(f, small1), BlockOf(f, big1)) << "distinct size classes";
}

TEST(PoolDeepTest, PackingDensityMatchesFormula) {
  // 16 B slots in a 248 B payload: nslots = (248-2)/17 = 14.
  Fixture f;
  std::vector<std::unique_ptr<pdt::PString>> strings;
  std::set<nvm::Offset> blocks;
  for (int i = 0; i < 14; ++i) {
    strings.push_back(std::make_unique<pdt::PString>(*f.rt, "0123456789"));
    blocks.insert(BlockOf(f, *strings.back()));
  }
  EXPECT_EQ(blocks.size(), 1u) << "14 slots of 16 B pack into one block";
  strings.push_back(std::make_unique<pdt::PString>(*f.rt, "0123456789"));
  blocks.insert(BlockOf(f, *strings.back()));
  EXPECT_EQ(blocks.size(), 2u) << "the 15th spills into a new block";
}

TEST(PoolDeepTest, SlotReuseIsLifo) {
  Fixture f;
  auto a = std::make_unique<pdt::PString>(*f.rt, "aaaa");
  auto b = std::make_unique<pdt::PString>(*f.rt, "bbbb");
  const nvm::Offset slot_a = a->addr();
  const nvm::Offset slot_b = b->addr();
  f.rt->Free(*a);
  f.rt->Free(*b);
  pdt::PString c(*f.rt, "cccc");
  pdt::PString d(*f.rt, "dddd");
  EXPECT_EQ(c.addr(), slot_b);
  EXPECT_EQ(d.addr(), slot_a);
}

TEST(PoolDeepTest, GraphRecoveryRebuildsExactOccupancy) {
  Fixture f;
  nvm::Offset kept_slot;
  {
    pdt::PStringHashMap m(*f.rt, 8);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    pdt::PString kept(*f.rt, "kept-value");
    m.Put("k", &kept);
    kept_slot = m.GetAs<pdt::PString>("k")->addr();
    // Leak a pool slot: allocated, occupancy hint set, never published.
    pdt::PString leaked(*f.rt, "leaked-val");
    f.rt->Psync();
  }
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());  // graph recovery
  // The leaked slot must be reusable now: allocate until we land on it.
  bool reused = false;
  std::vector<std::unique_ptr<pdt::PString>> churn;
  for (int i = 0; i < 32 && !reused; ++i) {
    churn.push_back(std::make_unique<pdt::PString>(*f.rt, "churn-val!"));
    reused = churn.back()->addr() != kept_slot &&
             BlockOf(f, *churn.back()) == (kept_slot / 256) * 256;
  }
  // The kept slot itself still holds its value.
  const auto m = f.rt->root().GetAs<pdt::PStringHashMap>("m");
  EXPECT_EQ(m->GetAs<pdt::PString>("k")->Str(), "kept-value");
  EXPECT_TRUE(VerifyHeapIntegrity(*f.rt).ok());
}

TEST(PoolDeepTest, ScanRecoveryTrustsOccupancyHints) {
  Fixture f;
  {
    pdt::PString a(*f.rt, "will-stay!");
    a.Validate();
    f.rt->root().Put("a", &a);
    auto b = std::make_unique<pdt::PString>(*f.rt, "was-freed!");
    f.rt->Free(*b);  // clears the occupancy hint
    f.rt->Psync();
  }
  f.rt.reset();
  RuntimeOptions opts;
  opts.graph_recovery = false;  // block scan: hints decide slot occupancy
  f.rt = JnvmRuntime::Open(f.dev.get(), opts);
  EXPECT_EQ(f.rt->root().GetAs<pdt::PString>("a")->Str(), "will-stay!");
  // The freed slot is allocatable again (hint was cleared + recovered).
  pdt::PString c(*f.rt, "reuses-it!");
  EXPECT_EQ(c.Str(), "reuses-it!");
}

TEST(PoolDeepTest, EmptyPoolBlockFreedByScanRecovery) {
  Fixture f;
  nvm::Offset pool_block;
  {
    auto s = std::make_unique<pdt::PString>(*f.rt, "transient!");
    pool_block = BlockOf(f, *s);
    f.rt->Free(*s);  // hint cleared: the block is now fully empty
    f.rt->Psync();
  }
  f.rt.reset();
  RuntimeOptions opts;
  opts.graph_recovery = false;
  f.rt = JnvmRuntime::Open(f.dev.get(), opts);
  // The fully-empty pool block was reclaimed: its header is no longer a
  // valid master (either voided or recycled).
  const heap::BlockHeader h = f.rt->heap().ReadHeader(pool_block);
  EXPECT_FALSE(h.IsMaster() && h.valid);
}

TEST(PoolDeepTest, FaDeferredPoolFreeAppliesAtCommit) {
  Fixture f;
  auto s = std::make_unique<pdt::PString>(*f.rt, "fa-freed!!");
  const nvm::Offset slot = s->addr();
  f.rt->FaStart();
  f.rt->Free(*s);
  // Not yet recycled: allocating now must not reuse the slot.
  pdt::PString probe1(*f.rt, "probe-one!");
  EXPECT_NE(probe1.addr(), slot);
  f.rt->FaEnd();
  // After commit the slot is in the free list (LIFO: next alloc takes it).
  pdt::PString probe2(*f.rt, "probe-two!");
  EXPECT_EQ(probe2.addr(), slot);
}

TEST(PoolDeepTest, CrashSweepNeverCorruptsPoolNeighbors) {
  // Neighboring slots in one pool block belong to different objects; crash
  // at any point while churning one slot must never damage the others.
  for (uint64_t crash_at = 10; crash_at < 400; crash_at += 37) {
    Fixture f(/*strict=*/true);
    {
      pdt::PStringHashMap m(*f.rt, 8);
      m.Pwb();
      m.Validate();
      f.rt->root().Put("m", &m);
      // Three stable neighbors.
      for (int i = 0; i < 3; ++i) {
        pdt::PString v(*f.rt, "stable" + std::to_string(i));
        m.Put("stable" + std::to_string(i), &v);
      }
      f.rt->Psync();
      f.dev->ScheduleCrashAfter(crash_at);
      try {
        for (int i = 0; i < 40; ++i) {
          pdt::PString v(*f.rt, "churn-" + std::to_string(i));
          m.Put("churn", &v);  // replaces + frees the old pool slot
        }
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      f.rt->Abandon();
    }
    f.rt.reset();
    f.dev->Crash(crash_at);
    f.rt = JnvmRuntime::Open(f.dev.get());
    const auto m = f.rt->root().GetAs<pdt::PStringHashMap>("m");
    for (int i = 0; i < 3; ++i) {
      const auto v = m->GetAs<pdt::PString>("stable" + std::to_string(i));
      ASSERT_NE(v, nullptr) << "crash_at " << crash_at;
      EXPECT_EQ(v->Str(), "stable" + std::to_string(i)) << "crash_at " << crash_at;
    }
    EXPECT_TRUE(VerifyHeapIntegrity(*f.rt).ok()) << "crash_at " << crash_at;
  }
}

}  // namespace
}  // namespace jnvm::core
