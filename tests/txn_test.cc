// Tests for the cross-shard transaction subsystem (src/txn + the server's
// MULTI/EXEC plane, DESIGN.md §9): wire semantics (queueing, read-your-
// writes, dirty-txn abort, DISCARD), the single-shard fast path (no decision
// record), cross-shard 2PC (decision record sealed on the coordinator),
// WAIT-K interaction with the decision seal, shard-level recovery of
// prepared-but-undecided txns (present decision → commit, absent → abort),
// and txn survival across a full server restart.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/repl/frame.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/shard.h"
#include "src/txn/txn.h"

namespace jnvm::server {
namespace {

ShardOptions SmallShard() {
  ShardOptions o;
  o.device_bytes = 32ull << 20;
  o.map_capacity = 1 << 10;
  o.batch = 8;
  return o;
}

// Smallest suffix whose FNV-1a hash routes to `shard` — lets tests pin keys
// to specific shards without hardcoding hash values.
std::string KeyOnShard(uint32_t shard, uint32_t nshards, int tag) {
  for (int i = 0;; ++i) {
    std::string k =
        "tk:" + std::to_string(tag) + ":" + std::to_string(i);
    if (ShardFor(k, nshards) == shard) {
      return k;
    }
  }
}

// Parses the `txn:` STATS line into k=v counters.
bool TxnStats(Client& c, std::map<std::string, uint64_t>* out) {
  const auto stats = c.Stats();
  if (!stats.has_value()) {
    return false;
  }
  std::istringstream in(*stats);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("txn: ", 0) != 0) {
      continue;
    }
    std::istringstream fields(line.substr(5));
    std::string kv;
    while (fields >> kv) {
      const size_t eq = kv.find('=');
      if (eq != std::string::npos) {
        (*out)[kv.substr(0, eq)] = std::strtoull(kv.c_str() + eq + 1, nullptr, 10);
      }
    }
    return true;
  }
  return false;
}

// Polls STATS until the inflight staged-txn count drains to zero — the
// cross-shard apply phase is fire-and-forget, so counters settle shortly
// after the EXEC reply.
bool WaitTxnSettled(Client& c, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::map<std::string, uint64_t> t;
    if (TxnStats(c, &t) && t["inflight"] == 0) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// ---- Wire-level E2E (both pollers) -----------------------------------------

class TxnE2E : public ::testing::TestWithParam<bool> {
 protected:
  ServerOptions Opts(uint32_t nshards = 4) {
    ServerOptions o;
    o.nshards = nshards;
    o.shard = SmallShard();
    o.force_poll = GetParam();
    return o;
  }

  void Start(uint32_t nshards = 4) {
    std::string err;
    server_ = Server::Start(Opts(nshards), &err);
    ASSERT_NE(server_, nullptr) << err;
    client_ = Client::Connect("127.0.0.1", server_->port(), &err);
    ASSERT_NE(client_, nullptr) << err;
  }

  // Queues one MULTI op and asserts the +QUEUED reply.
  void Queue(const std::vector<std::string>& args) {
    RespReply r;
    ASSERT_TRUE(client_->Roundtrip(args, &r)) << client_->last_error();
    ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;
    ASSERT_EQ(r.str, "QUEUED");
  }

  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_P(TxnE2E, SingleShardExecAppliesAndSkipsDecisionRecord) {
  Start();
  const std::string a = KeyOnShard(0, 4, 1);
  const std::string b = KeyOnShard(0, 4, 2);

  ASSERT_TRUE(client_->Multi());
  Queue({"SET", a, "va"});
  Queue({"SET", b, "vb"});
  Queue({"GET", a});  // staged read-your-writes
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].type, RespReply::Type::kSimple);
  EXPECT_EQ(replies[1].type, RespReply::Type::kSimple);
  ASSERT_EQ(replies[2].type, RespReply::Type::kBulk);
  EXPECT_EQ(replies[2].str, "va");

  EXPECT_EQ(client_->Get(a).value_or(""), "va");
  EXPECT_EQ(client_->Get(b).value_or(""), "vb");

  // Single-shard fast path: one [prepare|marker] record, never a decision.
  ASSERT_TRUE(WaitTxnSettled(*client_));
  std::map<std::string, uint64_t> t;
  ASSERT_TRUE(TxnStats(*client_, &t));
  EXPECT_EQ(t["committed"], 1u);
  EXPECT_EQ(t["prepared"], 1u);
  EXPECT_EQ(t["aborted"], 0u);
  EXPECT_EQ(t["decision_records"], 0u);
}

TEST_P(TxnE2E, CrossShardExecAppliesAtomicallyWithOneDecision) {
  Start();
  const std::string k0 = KeyOnShard(0, 4, 3);
  const std::string k1 = KeyOnShard(1, 4, 4);
  const std::string k2 = KeyOnShard(2, 4, 5);

  ASSERT_TRUE(client_->Multi());
  Queue({"SET", k0, "v0"});
  Queue({"SET", k1, "v1"});
  Queue({"SET", k2, "v2"});
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  ASSERT_EQ(replies.size(), 3u);

  EXPECT_EQ(client_->Get(k0).value_or(""), "v0");
  EXPECT_EQ(client_->Get(k1).value_or(""), "v1");
  EXPECT_EQ(client_->Get(k2).value_or(""), "v2");

  ASSERT_TRUE(WaitTxnSettled(*client_));
  std::map<std::string, uint64_t> t;
  ASSERT_TRUE(TxnStats(*client_, &t));
  // One decision on the coordinator; every write participant prepared and
  // (counters aggregate across shards) applied its slice.
  EXPECT_EQ(t["decision_records"], 1u);
  EXPECT_EQ(t["prepared"], 3u);
  EXPECT_EQ(t["committed"], 3u);
  EXPECT_EQ(t["aborted"], 0u);
}

TEST_P(TxnE2E, CrossShardReadsSeeStagedWritesAndPreTxnState) {
  Start();
  const std::string a = KeyOnShard(0, 4, 6);
  const std::string b = KeyOnShard(1, 4, 7);
  ASSERT_TRUE(client_->Set(b, "old"));

  ASSERT_TRUE(client_->Multi());
  Queue({"SET", a, "new"});
  Queue({"GET", b});   // pre-txn store state
  Queue({"DEL", b});
  Queue({"GET", b});   // staged delete → nil
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  ASSERT_EQ(replies.size(), 4u);
  ASSERT_EQ(replies[1].type, RespReply::Type::kBulk);
  EXPECT_EQ(replies[1].str, "old");
  ASSERT_EQ(replies[2].type, RespReply::Type::kInteger);
  EXPECT_EQ(replies[2].integer, 1);
  EXPECT_EQ(replies[3].type, RespReply::Type::kNil);

  EXPECT_EQ(client_->Get(a).value_or(""), "new");
  EXPECT_FALSE(client_->Get(b).has_value());
}

TEST_P(TxnE2E, NestedMultiRejectedWithoutDirtyingTxn) {
  Start();
  ASSERT_TRUE(client_->Multi());
  RespReply r;
  ASSERT_TRUE(client_->Roundtrip({"MULTI"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("nested"), std::string::npos) << r.str;

  // The nested-MULTI error does not poison the open txn (Redis semantics).
  const std::string k = KeyOnShard(0, 4, 8);
  Queue({"SET", k, "v"});
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(client_->Get(k).value_or(""), "v");
}

TEST_P(TxnE2E, ExecAndDiscardWithoutMultiRejected) {
  Start();
  RespReply r;
  ASSERT_TRUE(client_->Roundtrip({"EXEC"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("EXEC without MULTI"), std::string::npos) << r.str;
  ASSERT_TRUE(client_->Roundtrip({"DISCARD"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("DISCARD without MULTI"), std::string::npos) << r.str;
}

TEST_P(TxnE2E, DiscardDropsQueuedOps) {
  Start();
  const std::string k = KeyOnShard(0, 4, 9);
  ASSERT_TRUE(client_->Multi());
  Queue({"SET", k, "v"});
  ASSERT_TRUE(client_->Discard());
  EXPECT_FALSE(client_->Get(k).has_value());
  // The txn is closed: EXEC is an error again.
  RespReply r;
  ASSERT_TRUE(client_->Roundtrip({"EXEC"}, &r));
  EXPECT_EQ(r.type, RespReply::Type::kError);
}

TEST_P(TxnE2E, EmptyExecReturnsEmptyArray) {
  Start();
  ASSERT_TRUE(client_->Multi());
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  EXPECT_TRUE(replies.empty());
  std::map<std::string, uint64_t> t;
  ASSERT_TRUE(TxnStats(*client_, &t));
  EXPECT_EQ(t["prepared"], 0u);
  EXPECT_EQ(t["committed"], 0u);
}

TEST_P(TxnE2E, InvalidQueuedCommandAbortsExecExplicitly) {
  Start();
  const std::string k0 = KeyOnShard(0, 4, 10);
  const std::string k1 = KeyOnShard(1, 4, 11);
  ASSERT_TRUE(client_->Multi());
  Queue({"SET", k0, "v0"});
  RespReply r;
  ASSERT_TRUE(client_->Roundtrip({"HSET", k1, "0", "x"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);  // dirties the txn
  Queue({"SET", k1, "v1"});

  std::vector<RespReply> replies;
  ASSERT_FALSE(client_->Exec(&replies));
  EXPECT_NE(client_->last_error().find("TXNABORT"), std::string::npos)
      << client_->last_error();
  EXPECT_TRUE(replies.empty());
  // All-or-nothing: the abort applied neither write.
  EXPECT_FALSE(client_->Get(k0).has_value());
  EXPECT_FALSE(client_->Get(k1).has_value());
  std::map<std::string, uint64_t> t;
  ASSERT_TRUE(TxnStats(*client_, &t));
  EXPECT_EQ(t["committed"], 0u);
  EXPECT_EQ(t["decision_records"], 0u);
}

TEST_P(TxnE2E, ReadOnlyCrossShardTxnSealsNoRecords) {
  Start();
  const std::string a = KeyOnShard(0, 4, 12);
  const std::string b = KeyOnShard(1, 4, 13);
  ASSERT_TRUE(client_->Set(a, "va"));
  ASSERT_TRUE(client_->Set(b, "vb"));

  ASSERT_TRUE(client_->Multi());
  Queue({"GET", a});
  Queue({"GET", b});
  std::vector<RespReply> replies;
  ASSERT_TRUE(client_->Exec(&replies)) << client_->last_error();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].str, "va");
  EXPECT_EQ(replies[1].str, "vb");

  std::map<std::string, uint64_t> t;
  ASSERT_TRUE(TxnStats(*client_, &t));
  EXPECT_EQ(t["prepared"], 0u);
  EXPECT_EQ(t["decision_records"], 0u);
}

TEST_P(TxnE2E, ServerRestartPreservesCommittedCrossShardTxn) {
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_txn_restart_" + std::to_string(::getpid()) +
        (GetParam() ? "_poll" : "_epoll")))
          .string();
  ServerOptions opts = Opts(2);
  opts.shard.image_base = base;
  const std::string k0 = KeyOnShard(0, 2, 14);
  const std::string k1 = KeyOnShard(1, 2, 15);

  std::string err;
  {
    auto server = Server::Start(opts, &err);
    ASSERT_NE(server, nullptr) << err;
    auto c = Client::Connect("127.0.0.1", server->port(), &err);
    ASSERT_NE(c, nullptr) << err;
    ASSERT_TRUE(c->Multi());
    RespReply r;
    ASSERT_TRUE(c->Roundtrip({"SET", k0, "v0"}, &r));
    ASSERT_TRUE(c->Roundtrip({"SET", k1, "v1"}, &r));
    std::vector<RespReply> replies;
    ASSERT_TRUE(c->Exec(&replies)) << c->last_error();
    ASSERT_TRUE(c->Shutdown());
    server->Wait();
  }
  {
    auto server = Server::Start(opts, &err);
    ASSERT_NE(server, nullptr) << err;
    EXPECT_TRUE(server->AnyShardRecovered());
    auto c = Client::Connect("127.0.0.1", server->port(), &err);
    ASSERT_NE(c, nullptr) << err;
    EXPECT_EQ(c->Get(k0).value_or(""), "v0");
    EXPECT_EQ(c->Get(k1).value_or(""), "v1");
    // The recovered fleet accepts new txns.
    ASSERT_TRUE(c->Multi());
    RespReply r;
    ASSERT_TRUE(c->Roundtrip({"SET", k0, "v0b"}, &r));
    ASSERT_TRUE(c->Roundtrip({"SET", k1, "v1b"}, &r));
    std::vector<RespReply> replies;
    ASSERT_TRUE(c->Exec(&replies)) << c->last_error();
    EXPECT_EQ(c->Get(k1).value_or(""), "v1b");
    ASSERT_TRUE(c->Shutdown());
    server->Wait();
  }
  for (int i = 0; i < 2; ++i) {
    std::filesystem::remove(base + ".shard" + std::to_string(i) + ".img");
  }
}

INSTANTIATE_TEST_SUITE_P(Pollers, TxnE2E, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "poll" : "epoll";
                         });

// ---- WAIT-K on the decision record ------------------------------------------

TEST(TxnWaitK, CrossShardExecDegradesToWaitTimeoutWithoutReplicas) {
  ServerOptions opts;
  opts.nshards = 2;
  opts.shard = SmallShard();
  opts.shard.wait_acks = 1;
  opts.shard.wait_timeout_ms = 200;
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;
  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;

  const std::string k0 = KeyOnShard(0, 2, 20);
  const std::string k1 = KeyOnShard(1, 2, 21);
  ASSERT_TRUE(c->Multi());
  RespReply r;
  ASSERT_TRUE(c->Roundtrip({"SET", k0, "v0"}, &r));
  ASSERT_TRUE(c->Roundtrip({"SET", k1, "v1"}, &r));
  std::vector<RespReply> replies;
  // No subscriber can ever ack: the EXEC reply degrades to -WAITTIMEOUT,
  // but the decision sealed locally — the txn IS committed.
  ASSERT_FALSE(c->Exec(&replies));
  EXPECT_NE(c->last_error().find("WAITTIMEOUT"), std::string::npos)
      << c->last_error();
  EXPECT_EQ(c->Get(k0).value_or(""), "v0");
  EXPECT_EQ(c->Get(k1).value_or(""), "v1");
}

TEST(TxnWaitK, CrossShardExecSucceedsWithAckingReplica) {
  ServerOptions popts;
  popts.nshards = 2;
  popts.shard = SmallShard();
  popts.shard.wait_acks = 1;
  popts.shard.wait_timeout_ms = 10000;
  std::string err;
  auto primary = Server::Start(popts, &err);
  ASSERT_NE(primary, nullptr) << err;
  ServerOptions ropts;
  ropts.nshards = 2;
  ropts.shard = SmallShard();
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary->port());
  auto replica = Server::Start(ropts, &err);
  ASSERT_NE(replica, nullptr) << err;

  auto c = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(c, nullptr) << err;
  const std::string k0 = KeyOnShard(0, 2, 22);
  const std::string k1 = KeyOnShard(1, 2, 23);
  ASSERT_TRUE(c->Multi());
  RespReply r;
  ASSERT_TRUE(c->Roundtrip({"SET", k0, "v0"}, &r));
  ASSERT_TRUE(c->Roundtrip({"SET", k1, "v1"}, &r));
  std::vector<RespReply> replies;
  ASSERT_TRUE(c->Exec(&replies)) << c->last_error();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(c->Get(k0).value_or(""), "v0");
  EXPECT_EQ(c->Get(k1).value_or(""), "v1");
}

// ---- Shard-level 2PC recovery -----------------------------------------------
//
// These drive the txn plane against raw shards, mirroring what the server's
// coordinator hook and recovery do: a prepare without a sealed decision
// aborts on reopen; a prepare whose coordinator sealed the decision commits.

class TxnSink : public CompletionSink {
 public:
  void OnCompletion(Completion&& c) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      got_.push_back(std::move(c));
    }
    cv_.notify_all();
  }
  bool WaitFor(size_t n, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                        [&] { return got_.size() >= n; });
  }
  std::vector<Completion> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(got_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Completion> got_;
};

// One-part txn state for driving kTxnPrepare/kTxnDecide by hand.
std::shared_ptr<txn::TxnState> MakeTxn(txn::TxnId id, uint32_t coordinator,
                                       uint32_t shard, const std::string& key,
                                       const std::string& value) {
  auto t = std::make_shared<txn::TxnState>();
  t->id = id;
  t->coordinator = coordinator;
  t->nops = 1;
  t->replies.resize(1);
  txn::TxnPart p;
  p.shard = shard;
  txn::TxnOp op;
  op.kind = txn::TxnOp::Kind::kSet;
  op.key = key;
  op.value = value;
  op.reply_index = 0;
  p.ops.push_back(std::move(op));
  t->parts.push_back(std::move(p));
  t->remaining.store(1, std::memory_order_release);
  return t;
}

class TxnRecovery : public ::testing::Test {
 protected:
  std::string Base(const char* tag) {
    base_ = (std::filesystem::temp_directory_path() /
             (std::string("jnvm_txn_rec_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    return base_;
  }
  void TearDown() override {
    if (!base_.empty()) {
      for (int i = 0; i < 2; ++i) {
        std::filesystem::remove(base_ + ".shard" + std::to_string(i) + ".img");
      }
    }
  }
  // Reads `key` through the shard's request queue (ordered after everything
  // submitted before it) and returns the raw RESP reply. Drains completions
  // already in the sink first, so a prior phase-join can't satisfy the wait.
  std::string Get(Shard& shard, TxnSink& sink, const std::string& key) {
    sink.take();
    Request g;
    g.op = Request::Op::kGet;
    g.key = key;
    g.conn_id = 1;
    g.seq = 1;
    EXPECT_TRUE(shard.Submit(std::move(g)));
    EXPECT_TRUE(sink.WaitFor(1));
    auto got = sink.take();
    EXPECT_FALSE(got.empty());
    return got.empty() ? std::string() : got.back().reply;
  }

  std::string base_;
};

TEST_F(TxnRecovery, PrepareWithoutDecisionAbortsOnReopen) {
  ShardOptions o = SmallShard();
  o.image_base = Base("abort");
  const txn::TxnId id = 0x7001;
  const std::string key = "txnrec:abort:k";

  // Incarnation 1: the participant seals its prepare; the coordinator dies
  // (here: restarts) before sealing the decision.
  {
    TxnSink s0, s1;
    auto coord = Shard::Open(o, 0, &s0);
    auto part = Shard::Open(o, 1, &s1);
    auto t = MakeTxn(id, /*coordinator=*/0, /*shard=*/1, key, "v");
    Request r;
    r.op = Request::Op::kTxnPrepare;
    r.txn = t;
    r.txn_part = 0;
    ASSERT_TRUE(part->Submit(std::move(r)));
    ASSERT_TRUE(s1.WaitFor(1));  // phase join: the prepare record sealed
    EXPECT_EQ(part->Stats().txn.prepared, 1u);
    // Staged, not applied: the store has no trace of the write.
    EXPECT_EQ(Get(*part, s1, key), "$-1\r\n");
    EXPECT_TRUE(part->Quiesce().integrity_ok);
    EXPECT_TRUE(coord->Quiesce().integrity_ok);
  }

  // Incarnation 2: the log restages the txn; the coordinator's log holds no
  // decision → the resolution plan aborts it, explicitly.
  {
    TxnSink s0, s1;
    auto coord = Shard::Open(o, 0, &s0);
    auto part = Shard::Open(o, 1, &s1);
    const auto undecided = part->TxnView().undecided;
    ASSERT_EQ(undecided.size(), 1u);
    EXPECT_EQ(undecided[0].first, id);
    EXPECT_EQ(undecided[0].second, 0u);
    EXPECT_FALSE(coord->HasTxnDecision(id));

    const auto actions =
        txn::PlanResolution({coord->TxnView(), part->TxnView()});
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].shard, 1u);
    EXPECT_EQ(actions[0].id, id);
    EXPECT_FALSE(actions[0].commit);

    Request a;
    a.op = Request::Op::kTxnAbortMark;
    a.key = txn::TxnIdKey(id);
    ASSERT_TRUE(part->Submit(std::move(a)));
    EXPECT_EQ(Get(*part, s1, key), "$-1\r\n");  // nothing ever applied
    EXPECT_EQ(part->Stats().txn.aborted, 1u);
    EXPECT_EQ(part->Stats().txn.inflight, 0u);
    EXPECT_TRUE(part->Quiesce().integrity_ok);
    EXPECT_TRUE(coord->Quiesce().integrity_ok);
  }

  // Incarnation 3: the sealed abort marker resolved the txn for good.
  {
    TxnSink s1;
    auto part = Shard::Open(o, 1, &s1);
    EXPECT_TRUE(part->TxnView().undecided.empty());
    EXPECT_EQ(Get(*part, s1, key), "$-1\r\n");
    EXPECT_TRUE(part->Quiesce().integrity_ok);
  }
}

TEST_F(TxnRecovery, PrepareWithSealedDecisionCommitsOnReopen) {
  ShardOptions o = SmallShard();
  o.image_base = Base("commit");
  const txn::TxnId id = 0x7002;
  const std::string key = "txnrec:commit:k";

  // Incarnation 1: prepare on the participant, decision sealed on the
  // coordinator — then the fleet dies before the commit marker reaches the
  // participant (the kill-9-after-decision-seal case).
  {
    TxnSink s0, s1;
    auto coord = Shard::Open(o, 0, &s0);
    auto part = Shard::Open(o, 1, &s1);
    auto t = MakeTxn(id, /*coordinator=*/0, /*shard=*/1, key, "v");
    Request r;
    r.op = Request::Op::kTxnPrepare;
    r.txn = t;
    r.txn_part = 0;
    ASSERT_TRUE(part->Submit(std::move(r)));
    ASSERT_TRUE(s1.WaitFor(1));
    s1.take();

    // The worker filled the part's prepare seq and writes frame; the
    // decision carries them, exactly as the server's phase machine builds it.
    txn::Decision d = t->BuildDecision();
    ASSERT_EQ(d.parts.size(), 1u);
    EXPECT_EQ(d.parts[0].shard, 1u);
    std::string payload;
    txn::EncodeDecision(d, &payload);
    t->remaining.store(1, std::memory_order_release);
    Request dec;
    dec.op = Request::Op::kTxnDecide;
    dec.txn = t;
    dec.value = std::move(payload);
    ASSERT_TRUE(coord->Submit(std::move(dec)));
    ASSERT_TRUE(s0.WaitFor(1));  // the decision record sealed
    EXPECT_EQ(coord->Stats().txn.decision_records, 1u);
    EXPECT_TRUE(part->Quiesce().integrity_ok);
    EXPECT_TRUE(coord->Quiesce().integrity_ok);
  }

  // Incarnation 2: the participant restages its prepare; the coordinator's
  // log holds the decision → the resolution plan commits.
  {
    TxnSink s0, s1;
    auto coord = Shard::Open(o, 0, &s0);
    auto part = Shard::Open(o, 1, &s1);
    EXPECT_TRUE(coord->HasTxnDecision(id));
    ASSERT_EQ(part->TxnView().undecided.size(), 1u);
    // Staged writes are still unapplied until the marker seals.
    EXPECT_EQ(Get(*part, s1, key), "$-1\r\n");

    const auto actions =
        txn::PlanResolution({coord->TxnView(), part->TxnView()});
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].shard, 1u);
    EXPECT_TRUE(actions[0].commit);
    EXPECT_FALSE(actions[0].repair);

    Request a;
    a.op = Request::Op::kTxnApply;
    a.key = txn::TxnIdKey(id);
    ASSERT_TRUE(part->Submit(std::move(a)));
    EXPECT_EQ(Get(*part, s1, key), "$1\r\nv\r\n");
    EXPECT_EQ(part->Stats().txn.committed, 1u);
    EXPECT_EQ(part->Stats().txn.inflight, 0u);
    EXPECT_TRUE(part->Quiesce().integrity_ok);
    EXPECT_TRUE(coord->Quiesce().integrity_ok);
  }

  // Incarnation 3: the commit marker resolved the txn; the write survives.
  {
    TxnSink s1;
    auto part = Shard::Open(o, 1, &s1);
    EXPECT_TRUE(part->TxnView().undecided.empty());
    EXPECT_EQ(Get(*part, s1, key), "$1\r\nv\r\n");
    EXPECT_TRUE(part->Quiesce().integrity_ok);
  }
}

}  // namespace
}  // namespace jnvm::server
