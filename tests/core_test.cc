// Tests for the core object model: proxies, resurrection, validation,
// atomic reference update, the root map, pools, and graph recovery —
// including crash-property tests on the strict device.
#include <gtest/gtest.h>

#include "src/core/root_map.h"
#include "src/core/runtime.h"

namespace jnvm::core {
namespace {

// The running example of the paper (Figures 3 and 4): a Simple object with a
// reference field, an int field, and a transient field.
class Simple final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<Simple>("test.Simple", &Simple::Trace));
    return info;
  }

  explicit Simple(Resurrect) {}
  Simple(JnvmRuntime& rt, int32_t x) {
    AllocatePersistent(rt, Class(), kL.bytes);
    SetX(x);
  }

  void Resurrect_() override { y = 42; }  // transient init (§3.1)

  int32_t X() const { return ReadField<int32_t>(kL.off[1]); }
  void SetX(int32_t v) { WriteField<int32_t>(kL.off[1], v); }
  void Inc() { SetX(X() + 1); }

  Handle<Simple> Other() const { return ReadPObjectAs<Simple>(kL.off[0]); }
  Handle<PObject> OtherP() const { return ReadPObject(kL.off[0]); }
  void SetOther(const PObject* o) { WritePObject(kL.off[0], o); }
  void UpdateOther(PObject* o) { UpdateRef(kL.off[0], o); }  // §4.1.6
  nvm::Offset OtherRaw() const { return ReadRefRaw(kL.off[0]); }

  uint64_t Stamp() const { return ReadField<uint64_t>(kL.off[2]); }
  void SetStamp(uint64_t v) { WriteField<uint64_t>(kL.off[2], v); }

  int y = 0;  // transient

  static void Trace(ObjectView& v, RefVisitor& r) { r.VisitRef(v, kL.off[0]); }

 private:
  static constexpr auto kL = PackFields<3>({kRefField, 4, 8});
};

// A large object spanning several blocks.
class BigArray final : public PObject {
 public:
  static constexpr size_t kCount = 200;  // 1600 B payload -> 7 blocks

  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<BigArray>("test.BigArray"));
    return info;
  }

  explicit BigArray(Resurrect) {}
  explicit BigArray(JnvmRuntime& rt) { AllocatePersistent(rt, Class(), kCount * 8); }

  uint64_t Get(size_t i) const { return ReadField<uint64_t>(i * 8); }
  void Set(size_t i, uint64_t v) { WriteField<uint64_t>(i * 8, v); }
};

// A small immutable pool class (stand-in for PString at this layer).
class Blob final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info = RegisterClass(
        MakeClassInfo<Blob>("test.Blob", /*trace=*/nullptr, /*is_pool=*/true));
    return info;
  }

  explicit Blob(Resurrect) {}
  Blob(JnvmRuntime& rt, uint32_t tag) {
    AllocatePersistentPooled(rt, Class(), 8);
    WriteField<uint32_t>(0, tag);
    Pwb();
  }

  uint32_t Tag() const { return ReadField<uint32_t>(0); }
};

struct Fixture {
  explicit Fixture(bool strict = false, size_t bytes = 4 << 20) {
    nvm::DeviceOptions o;
    o.size_bytes = bytes;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }

  // Simulates SIGKILL + power failure, then reopens with recovery.
  void CrashAndReopen(uint64_t seed, bool graph = true) {
    rt->Abandon();
    rt.reset();
    dev->Crash(seed);
    RuntimeOptions opts;
    opts.graph_recovery = graph;
    rt = JnvmRuntime::Open(dev.get(), opts);
  }

  void CleanReopen() {
    rt.reset();
    rt = JnvmRuntime::Open(dev.get());
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

// ---- Basic proxy behaviour --------------------------------------------------

TEST(PObjectTest, FieldsReadBack) {
  Fixture f;
  Simple s(*f.rt, 7);
  EXPECT_EQ(s.X(), 7);
  s.Inc();
  EXPECT_EQ(s.X(), 8);
  s.SetStamp(0xdeadbeef);
  EXPECT_EQ(s.Stamp(), 0xdeadbeefull);
}

TEST(PObjectTest, FreshFieldsAreVoided) {
  Fixture f;
  Simple s(*f.rt, 0);
  EXPECT_EQ(s.OtherRaw(), 0u);
  EXPECT_EQ(s.Stamp(), 0u);
}

TEST(PObjectTest, AllocatedInvalidThenValidate) {
  Fixture f;
  Simple s(*f.rt, 1);
  EXPECT_FALSE(s.IsValidObject());
  s.Validate();
  EXPECT_TRUE(s.IsValidObject());
}

TEST(PObjectTest, ReferencesAndResurrection) {
  Fixture f;
  Simple a(*f.rt, 1);
  Simple b(*f.rt, 2);
  a.SetOther(&b);
  const Handle<Simple> b2 = a.Other();
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(b2->addr(), b.addr());
  EXPECT_EQ(b2->X(), 2);
  EXPECT_EQ(b2->y, 42);  // Resurrect_ ran
}

TEST(PObjectTest, NullReferenceResurrectsToNull) {
  Fixture f;
  Simple a(*f.rt, 1);
  EXPECT_EQ(a.Other(), nullptr);
}

TEST(PObjectTest, MultiBlockObject) {
  Fixture f;
  BigArray arr(*f.rt);
  for (size_t i = 0; i < BigArray::kCount; ++i) {
    arr.Set(i, i * 3);
  }
  for (size_t i = 0; i < BigArray::kCount; ++i) {
    EXPECT_EQ(arr.Get(i), i * 3);
  }
  EXPECT_EQ(f.rt->heap().ChainLength(arr.addr()), 7u);
}

TEST(PObjectTest, FreeDetachesProxy) {
  Fixture f;
  Simple s(*f.rt, 1);
  f.rt->Free(s);
  EXPECT_FALSE(s.attached());
  EXPECT_EQ(s.addr(), 0u);
}

TEST(PObjectDeathTest, AccessAfterFreeAborts) {
  Fixture f;
  Simple s(*f.rt, 1);
  f.rt->Free(s);
  EXPECT_DEATH(s.X(), "freed or unattached");
}

TEST(PObjectDeathTest, DoubleFreeAborts) {
  Fixture f;
  Simple s(*f.rt, 1);
  f.rt->Free(s);
  EXPECT_DEATH(f.rt->Free(s), "double free");
}

// ---- Root map ----------------------------------------------------------------

TEST(RootMapTest, PutGetExists) {
  Fixture f;
  Simple s(*f.rt, 42);
  EXPECT_FALSE(f.rt->root().Exists("simple"));
  f.rt->root().Put("simple", &s);
  EXPECT_TRUE(f.rt->root().Exists("simple"));
  const auto got = f.rt->root().GetAs<Simple>("simple");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->X(), 42);
}

TEST(RootMapTest, PutReplacesValue) {
  Fixture f;
  Simple a(*f.rt, 1);
  Simple b(*f.rt, 2);
  f.rt->root().Put("k", &a);
  f.rt->root().Put("k", &b);
  EXPECT_EQ(f.rt->root().GetAs<Simple>("k")->X(), 2);
  EXPECT_EQ(f.rt->root().Size(), 1u);
}

TEST(RootMapTest, RemoveUnbinds) {
  Fixture f;
  Simple s(*f.rt, 1);
  f.rt->root().Put("k", &s);
  EXPECT_TRUE(f.rt->root().Remove("k"));
  EXPECT_FALSE(f.rt->root().Exists("k"));
  EXPECT_FALSE(f.rt->root().Remove("k"));
}

TEST(RootMapTest, GrowsPastInitialCapacity) {
  Fixture f;
  std::vector<std::unique_ptr<Simple>> objs;
  for (int i = 0; i < 200; ++i) {  // initial capacity is 64
    objs.push_back(std::make_unique<Simple>(*f.rt, i));
    f.rt->root().Put("key" + std::to_string(i), objs.back().get());
  }
  EXPECT_EQ(f.rt->root().Size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(f.rt->root().GetAs<Simple>("key" + std::to_string(i))->X(), i);
  }
}

TEST(RootMapTest, SurvivesCleanRestart) {
  Fixture f;
  {
    Simple s(*f.rt, 99);
    f.rt->root().Put("persisted", &s);
  }
  f.CleanReopen();
  const auto got = f.rt->root().GetAs<Simple>("persisted");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->X(), 99);
}

TEST(RootMapTest, KeysLists) {
  Fixture f;
  Simple s(*f.rt, 1);
  f.rt->root().Put("a", &s);
  f.rt->root().Put("b", &s);
  auto keys = f.rt->root().Keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

// ---- Pools (small immutable objects, §4.4) -----------------------------------

TEST(PoolTest, SlotsPackedInOneBlock) {
  Fixture f;
  Blob a(*f.rt, 1);
  Blob b(*f.rt, 2);
  EXPECT_TRUE(a.is_pool());
  // Both live in the same 256 B block (packing, §4.4).
  const auto block_of = [&](const Blob& x) {
    return (x.addr() / f.rt->heap().block_size()) * f.rt->heap().block_size();
  };
  EXPECT_EQ(block_of(a), block_of(b));
  EXPECT_EQ(a.Tag(), 1u);
  EXPECT_EQ(b.Tag(), 2u);
}

TEST(PoolTest, FreeRecyclesSlot) {
  Fixture f;
  Blob a(*f.rt, 1);
  const nvm::Offset slot = a.addr();
  f.rt->Free(a);
  Blob b(*f.rt, 2);
  EXPECT_EQ(b.addr(), slot);
}

TEST(PoolTest, PoolRefsSurviveRestart) {
  Fixture f;
  {
    Simple s(*f.rt, 1);
    Blob blob(*f.rt, 77);
    s.UpdateOther(&blob);  // store a pool ref with the atomic update
    f.rt->root().Put("s", &s);
  }
  f.CleanReopen();
  const auto s = f.rt->root().GetAs<Simple>("s");
  const auto blob = std::static_pointer_cast<Blob>(s->OtherP());
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->Tag(), 77u);
}

// ---- Graph recovery (§2.4) -----------------------------------------------------

TEST(RecoveryTest, UnreachableObjectsCollected) {
  Fixture f;
  nvm::Offset leaked;
  {
    Simple kept(*f.rt, 1);
    f.rt->root().Put("kept", &kept);
    Simple lost(*f.rt, 2);  // validated but never published
    lost.Pwb();
    lost.Validate();
    f.rt->Psync();
    leaked = lost.addr();
  }
  f.CleanReopen();
  // The leaked object's blocks were reclaimed (header voided or reused).
  EXPECT_FALSE(f.rt->heap().ReadHeader(leaked).valid);
  EXPECT_GE(f.rt->recovery_report().sweep.freed_blocks, 1u);
  EXPECT_TRUE(f.rt->root().Exists("kept"));
}

TEST(RecoveryTest, InvalidReachableReferenceNullified) {
  Fixture f;
  {
    Simple parent(*f.rt, 1);
    parent.Pwb();
    parent.Validate();
    Simple child(*f.rt, 2);  // never validated
    child.Pwb();
    parent.SetOther(&child);  // reachable but invalid (§2.4)
    parent.PwbField(0, 8);
    f.rt->root().Put("p", &parent);
  }
  f.CleanReopen();
  EXPECT_GE(f.rt->recovery_report().nullified_refs, 1u);
  const auto parent = f.rt->root().GetAs<Simple>("p");
  EXPECT_EQ(parent->Other(), nullptr);  // nullified at recovery
}

TEST(RecoveryTest, AtomicUpdatePreventsNullification) {
  Fixture f;
  {
    Simple parent(*f.rt, 1);
    parent.Pwb();
    parent.Validate();
    Simple child(*f.rt, 2);
    parent.UpdateOther(&child);  // Figure 6: validate, pfence, store
    f.rt->root().Put("p", &parent);
  }
  f.CleanReopen();
  const auto parent = f.rt->root().GetAs<Simple>("p");
  const auto child = parent->Other();
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->X(), 2);
}

TEST(RecoveryTest, CyclicGraphTerminates) {
  Fixture f;
  {
    Simple a(*f.rt, 1);
    Simple b(*f.rt, 2);
    a.SetOther(&b);
    b.SetOther(&a);  // cycle
    a.Pwb();
    b.Pwb();
    a.Validate();
    b.Validate();
    f.rt->root().Put("a", &a);
  }
  f.CleanReopen();
  const auto a = f.rt->root().GetAs<Simple>("a");
  ASSERT_NE(a, nullptr);
  const auto b = a->Other();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->Other()->addr(), a->addr());
}

TEST(RecoveryTest, FreedBlocksReusableAfterRecovery) {
  Fixture f;
  {
    for (int i = 0; i < 50; ++i) {
      Simple garbage(*f.rt, i);  // all unreachable
    }
  }
  f.CleanReopen();
  const nvm::Offset bump_before = f.rt->heap().bump();
  for (int i = 0; i < 50; ++i) {
    Simple s(*f.rt, i);  // must reuse swept blocks
  }
  EXPECT_EQ(f.rt->heap().bump(), bump_before);
}

// ---- Figure 5: batched validation under a single fence -------------------------

TEST(LowLevelTest, BatchedValidationSingleFence) {
  Fixture f;
  Simple a(*f.rt, 1);
  Simple b(*f.rt, 2);
  Simple a_sub(*f.rt, 11);
  Simple b_sub(*f.rt, 22);
  a.SetOther(&a_sub);
  b.SetOther(&b_sub);
  a_sub.Pwb();
  a_sub.Validate();
  b_sub.Pwb();
  b_sub.Validate();
  a.Pwb();
  b.Pwb();
  f.rt->root().Wput("a", &a);
  f.rt->root().Wput("b", &b);
  f.rt->Pfence();  // the unique pfence of Figure 5
  a.Validate();
  b.Validate();
  f.rt->Psync();

  f.CleanReopen();
  const auto ra = f.rt->root().GetAs<Simple>("a");
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->Other()->X(), 11);
}

// ---- Crash-property tests (strict device) ---------------------------------------

TEST(CrashTest, CommittedPublicationSurvivesPowerFailure) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Fixture f(/*strict=*/true);
    {
      Simple s(*f.rt, 1234);
      f.rt->root().Put("k", &s);  // failure-atomic
    }
    f.CrashAndReopen(seed);
    const auto s = f.rt->root().GetAs<Simple>("k");
    ASSERT_NE(s, nullptr) << "seed " << seed;
    EXPECT_EQ(s->X(), 1234) << "seed " << seed;
  }
}

TEST(CrashTest, UnpublishedObjectNeverLeaksAfterCrash) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Fixture f(/*strict=*/true);
    {
      Simple s(*f.rt, 1);
      s.Pwb();
      s.Validate();
      // No fence, no publication: in every crash outcome the object must be
      // reclaimed.
    }
    f.CrashAndReopen(seed);
    EXPECT_EQ(f.rt->root().Size(), 0u) << "seed " << seed;
    // The object is reclaimed either by the sweep or — when the bump-pointer
    // store itself rolled back — by never having been durably allocated.
    const auto& report = f.rt->recovery_report();
    EXPECT_EQ(report.traversed_objects, 2u)  // root map + its ref array
        << "seed " << seed;
  }
}

TEST(CrashTest, WeakPutWithoutFenceIsAllOrNothing) {
  // Figure 5 discipline: crash before the fence may lose the objects but
  // must never expose a broken binding.
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Fixture f(/*strict=*/true);
    {
      Simple s(*f.rt, 5);
      s.Pwb();
      f.rt->root().Wput("w", &s);
      // no fence, no validate: crash now
    }
    f.CrashAndReopen(seed);
    const auto got = f.rt->root().GetAs<Simple>("w");
    if (got != nullptr) {
      EXPECT_EQ(got->X(), 5) << "seed " << seed;
    }
    // nullptr is acceptable: the binding (or the object) was reclaimed.
  }
}

TEST(CrashTest, SweepAfterCrashKeepsHeapConsistent) {
  // Random crash points during a mutation workload; after recovery the heap
  // must re-allocate without tripping any internal invariant.
  for (uint64_t crash_at : {50u, 200u, 500u, 900u}) {
    Fixture f(/*strict=*/true);
    f.dev->ScheduleCrashAfter(crash_at);
    try {
      for (int i = 0; i < 100; ++i) {
        Simple s(*f.rt, i);
        f.rt->root().Put("k" + std::to_string(i % 7), &s);
      }
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
    f.CrashAndReopen(crash_at);
    // Heap usable after recovery:
    Simple fresh(*f.rt, 1);
    f.rt->root().Put("fresh", &fresh);
    EXPECT_EQ(f.rt->root().GetAs<Simple>("fresh")->X(), 1);
    // All bindings that survived point at intact objects.
    for (const std::string& key : f.rt->root().Keys()) {
      const auto v = f.rt->root().GetAs<Simple>(key);
      if (v != nullptr) {
        EXPECT_GE(v->X(), 0);
      }
    }
  }
}

}  // namespace
}  // namespace jnvm::core
