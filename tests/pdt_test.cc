// Tests for the J-PDT library (§4.3): PString, fixed arrays, extensible
// arrays, the skip list, and the map/set family with its three proxy-caching
// variants, plus restart/resurrection behaviour.
#include <gtest/gtest.h>

#include <string>

#include "src/pdt/parray.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/pdt/pstring.h"

namespace jnvm::pdt {
namespace {

using core::Handle;
using core::JnvmRuntime;

struct Fixture {
  explicit Fixture(bool strict = false, size_t bytes = 16 << 20) {
    nvm::DeviceOptions o;
    o.size_bytes = bytes;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }

  void CleanReopen() {
    rt.reset();
    rt = JnvmRuntime::Open(dev.get());
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

// ---- PString ------------------------------------------------------------------

TEST(PStringTest, SmallStringUsesPool) {
  Fixture f;
  PString s(*f.rt, "Hello, NVMM!");
  EXPECT_TRUE(s.is_pool());
  EXPECT_EQ(s.Str(), "Hello, NVMM!");
  EXPECT_EQ(s.Length(), 12u);
  EXPECT_TRUE(s.Equals("Hello, NVMM!"));
  EXPECT_FALSE(s.Equals("hello"));
}

TEST(PStringTest, LargeStringUsesChain) {
  Fixture f;
  const std::string big(1000, 'x');
  PString s(*f.rt, big);
  EXPECT_FALSE(s.is_pool());
  EXPECT_EQ(s.Str(), big);
  EXPECT_EQ(f.rt->heap().ChainLength(s.addr()), 5u);
}

TEST(PStringTest, EmptyString) {
  Fixture f;
  PString s(*f.rt, "");
  EXPECT_EQ(s.Length(), 0u);
  EXPECT_EQ(s.Str(), "");
}

TEST(PStringTest, BinaryContentSafe) {
  Fixture f;
  const std::string bin("\0\x01\xff payload \0 tail", 20);
  PString s(*f.rt, bin);
  EXPECT_EQ(s.Str(), bin);
}

TEST(PStringTest, BoundaryAtPoolLimit) {
  Fixture f;
  const size_t max = f.rt->pools().max_slot_bytes();
  PString just_fits(*f.rt, std::string(max - PString::kDataOff, 'a'));
  EXPECT_TRUE(just_fits.is_pool());
  PString too_big(*f.rt, std::string(max - PString::kDataOff + 1, 'b'));
  EXPECT_FALSE(too_big.is_pool());
  EXPECT_EQ(just_fits.Length(), max - PString::kDataOff);
  EXPECT_EQ(too_big.Length(), max - PString::kDataOff + 1);
}

// ---- Fixed arrays ----------------------------------------------------------------

TEST(PLongArrayTest, SetGetFlush) {
  Fixture f;
  PLongArray a(*f.rt, 100);
  EXPECT_EQ(a.Length(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Set(i, static_cast<int64_t>(i * i));
    a.FlushElement(i);
  }
  f.rt->Pfence();
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Get(i), static_cast<int64_t>(i * i));
  }
}

TEST(PLongArrayTest, FreshElementsZero) {
  Fixture f;
  PLongArray a(*f.rt, 10);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Get(i), 0);
  }
}

TEST(PByteArrayTest, RoundTrip) {
  Fixture f;
  PByteArray a(*f.rt, std::string_view("some persistent bytes"));
  EXPECT_EQ(a.Str(), "some persistent bytes");
  char buf[4];
  a.Read(5, buf, 4);
  EXPECT_EQ(std::string(buf, 4), "pers");
  a.Write(0, "SOME", 4);
  EXPECT_EQ(a.Str(), "SOME persistent bytes");
}

TEST(PByteArrayTest, LargeSpansBlocks) {
  Fixture f;
  std::string data(5000, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i % 251);
  }
  PByteArray a(*f.rt, data);
  EXPECT_EQ(a.Str(), data);
  EXPECT_GT(f.rt->heap().ChainLength(a.addr()), 20u);
}

// ---- Extensible array -------------------------------------------------------------

TEST(PExtArrayTest, AppendAndGrow) {
  Fixture f;
  PExtArray arr(*f.rt, 4);
  std::vector<std::unique_ptr<PString>> strings;
  for (int i = 0; i < 20; ++i) {
    strings.push_back(std::make_unique<PString>(*f.rt, "item" + std::to_string(i)));
    arr.Append(strings.back().get());
  }
  EXPECT_EQ(arr.Size(), 20u);
  EXPECT_GE(arr.Capacity(), 20u);
  for (int i = 0; i < 20; ++i) {
    const auto s = std::static_pointer_cast<PString>(arr.Get(i));
    EXPECT_EQ(s->Str(), "item" + std::to_string(i));
  }
}

TEST(PExtArrayTest, SurvivesRestart) {
  Fixture f;
  nvm::Offset arr_addr;
  {
    PExtArray arr(*f.rt, 2);
    for (int i = 0; i < 10; ++i) {
      PString s(*f.rt, "v" + std::to_string(i));
      arr.Append(&s);
    }
    arr.Pwb();
    arr.Validate();
    f.rt->root().Put("arr", &arr);
    arr_addr = arr.addr();
  }
  f.CleanReopen();
  const auto arr = f.rt->root().GetAs<PExtArray>("arr");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->Size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::static_pointer_cast<PString>(arr->Get(i))->Str(),
              "v" + std::to_string(i));
  }
}

TEST(PExtArrayTest, PopBack) {
  Fixture f;
  PExtArray arr(*f.rt, 4);
  PString s(*f.rt, "x");
  arr.Append(&s);
  arr.Append(&s);
  arr.PopBack();
  EXPECT_EQ(arr.Size(), 1u);
}

TEST(PExtArrayTest, SetReplacesElement) {
  Fixture f;
  PExtArray arr(*f.rt, 4);
  PString a(*f.rt, "a");
  PString b(*f.rt, "b");
  arr.Append(&a);
  arr.Set(0, &b);
  EXPECT_EQ(std::static_pointer_cast<PString>(arr.Get(0))->Str(), "b");
}

// ---- Volatile skip list -------------------------------------------------------------

TEST(SkipListTest, InsertFindErase) {
  SkipListMap<std::string, uint64_t> m;
  m["b"] = 2;
  m["a"] = 1;
  m["c"] = 3;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains("a"));
  EXPECT_EQ(m.find("b").value(), 2u);
  EXPECT_EQ(m.erase("b"), 1u);
  EXPECT_FALSE(m.contains("b"));
  EXPECT_EQ(m.erase("b"), 0u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(SkipListTest, OrderedIteration) {
  SkipListMap<int64_t, uint64_t> m;
  for (int64_t k : {5, 1, 9, 3, 7, 2, 8}) {
    m[k] = static_cast<uint64_t>(k);
  }
  int64_t prev = -1;
  size_t n = 0;
  for (auto it = m.begin(); it != m.end(); ++it) {
    EXPECT_GT(it.key(), prev);
    prev = it.key();
    ++n;
  }
  EXPECT_EQ(n, 7u);
}

TEST(SkipListTest, OverwriteValue) {
  SkipListMap<std::string, uint64_t> m;
  m["k"] = 1;
  m["k"] = 2;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find("k").value(), 2u);
}

TEST(SkipListTest, StressAgainstStdMap) {
  SkipListMap<int64_t, uint64_t> sl;
  std::map<int64_t, uint64_t> ref;
  Xorshift rng(17);
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = static_cast<int64_t>(rng.NextBelow(500));
    switch (rng.NextBelow(3)) {
      case 0:
        sl[k] = static_cast<uint64_t>(i);
        ref[k] = static_cast<uint64_t>(i);
        break;
      case 1:
        EXPECT_EQ(sl.erase(k), ref.erase(k));
        break;
      default: {
        uint64_t got = 0;
        const bool found = MirrorFind(sl, k, &got);
        auto it = ref.find(k);
        EXPECT_EQ(found, it != ref.end());
        if (found) {
          EXPECT_EQ(got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(sl.size(), ref.size());
}

// ---- Maps: shared behaviour across the three structures ------------------------------

template <typename MapT>
class PMapTypedTest : public ::testing::Test {};

using MapTypes = ::testing::Types<PStringHashMap, PStringTreeMap, PStringSkipListMap>;
TYPED_TEST_SUITE(PMapTypedTest, MapTypes);

TYPED_TEST(PMapTypedTest, PutGetRemove) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  PString v1(*f.rt, "value1");
  PString v2(*f.rt, "value2");
  m.Put("k1", &v1);
  m.Put("k2", &v2);
  EXPECT_EQ(m.Size(), 2u);
  EXPECT_TRUE(m.Contains("k1"));
  EXPECT_FALSE(m.Contains("nope"));
  EXPECT_EQ(m.template GetAs<PString>("k1")->Str(), "value1");
  EXPECT_TRUE(m.Remove("k1"));
  EXPECT_FALSE(m.Contains("k1"));
  EXPECT_EQ(m.Size(), 1u);
  EXPECT_FALSE(m.Remove("k1"));
}

TYPED_TEST(PMapTypedTest, GetMissingReturnsNull) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  EXPECT_EQ(m.Get("missing"), nullptr);
}

TYPED_TEST(PMapTypedTest, PutReplaceFreesOldValue) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  const auto before = f.rt->heap().stats();
  PString v1(*f.rt, std::string(500, 'a'));  // chained (3 blocks)
  m.Put("k", &v1);
  PString v2(*f.rt, std::string(500, 'b'));
  m.Put("k", &v2);  // frees v1's blocks
  const auto after = f.rt->heap().stats();
  EXPECT_GE(after.blocks_freed - before.blocks_freed, 3u);
  EXPECT_EQ(m.template GetAs<PString>("k")->Str(), std::string(500, 'b'));
}

TYPED_TEST(PMapTypedTest, GrowsBeyondInitialCapacity) {
  Fixture f;
  TypeParam m(*f.rt, 4);
  std::vector<std::unique_ptr<PString>> keep;
  for (int i = 0; i < 100; ++i) {
    keep.push_back(std::make_unique<PString>(*f.rt, "v" + std::to_string(i)));
    m.Put("key" + std::to_string(i), keep.back().get());
  }
  EXPECT_EQ(m.Size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.template GetAs<PString>("key" + std::to_string(i))->Str(),
              "v" + std::to_string(i));
  }
}

TYPED_TEST(PMapTypedTest, SurvivesRestartAndRebuildsMirror) {
  Fixture f;
  {
    TypeParam m(*f.rt, 8);
    for (int i = 0; i < 30; ++i) {
      PString v(*f.rt, "payload" + std::to_string(i));
      m.Put("key" + std::to_string(i), &v);
    }
    m.Remove("key7");
    m.Remove("key23");
    m.Pwb();
    m.Validate();
    f.rt->root().Put("map", &m);
  }
  f.CleanReopen();
  const auto m = f.rt->root().template GetAs<TypeParam>("map");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Size(), 28u);
  EXPECT_FALSE(m->Contains("key7"));
  EXPECT_EQ(m->template GetAs<PString>("key11")->Str(), "payload11");
  // Freed slots are reusable after the restart.
  PString fresh(*f.rt, "fresh");
  m->Put("new", &fresh);
  EXPECT_EQ(m->Size(), 29u);
}

TYPED_TEST(PMapTypedTest, SetSemantics) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  m.Add("member1");
  m.Add("member2");
  EXPECT_TRUE(m.Contains("member1"));
  EXPECT_EQ(m.Get("member1"), nullptr);  // sets bind no value
  EXPECT_EQ(m.Size(), 2u);
  m.Remove("member1");
  EXPECT_FALSE(m.Contains("member1"));
}

TYPED_TEST(PMapTypedTest, CachedVariantReturnsSameProxy) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  m.SetCaching(ProxyCaching::kCached);
  PString v(*f.rt, "val");
  m.Put("k", &v);
  const auto a = m.Get("k");
  const auto b = m.Get("k");
  EXPECT_EQ(a.get(), b.get()) << "cached variant must reuse the proxy";
}

TYPED_TEST(PMapTypedTest, BaseVariantAllocatesFreshProxy) {
  Fixture f;
  TypeParam m(*f.rt, 8);
  PString v(*f.rt, "val");
  m.Put("k", &v);
  const auto a = m.Get("k");
  const auto b = m.Get("k");
  EXPECT_NE(a.get(), b.get()) << "base variant systematically allocates";
  EXPECT_EQ(a->addr(), b->addr());
}

TYPED_TEST(PMapTypedTest, EagerVariantPopulatesOnResurrection) {
  Fixture f;
  {
    TypeParam m(*f.rt, 8);
    PString v(*f.rt, "val");
    m.Put("k", &v);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("map", &m);
  }
  f.CleanReopen();
  const auto m = f.rt->root().template GetAs<TypeParam>("map");
  m->SetCaching(ProxyCaching::kEager);
  const auto a = m->Get("k");
  const auto b = m->Get("k");
  EXPECT_EQ(a.get(), b.get());
}

// ---- Tree-specific: ordered iteration --------------------------------------------

TEST(PTreeMapTest, ForEachIsOrdered) {
  Fixture f;
  PStringTreeMap m(*f.rt, 8);
  PString v(*f.rt, "x");
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) {
    m.Put(k, &v, /*free_old_value=*/false);
  }
  std::vector<std::string> keys;
  m.ForEach([&](const std::string& k, Handle<core::PObject>) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "bravo", "charlie", "delta"}));
}

TEST(PSkipListMapTest, ForEachIsOrdered) {
  Fixture f;
  PStringSkipListMap m(*f.rt, 8);
  PString v(*f.rt, "x");
  for (const char* k : {"d", "a", "c", "b"}) {
    m.Put(k, &v, false);
  }
  std::vector<std::string> keys;
  m.ForEach([&](const std::string& k, Handle<core::PObject>) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c", "d"}));
}

// ---- Integer-keyed map (inline keys) ----------------------------------------------

TEST(PLongHashMapTest, InlineKeysWork) {
  Fixture f;
  PLongHashMap m(*f.rt, 8);
  PString v(*f.rt, "account");
  m.Put(1234567, &v);
  EXPECT_TRUE(m.Contains(1234567));
  EXPECT_FALSE(m.Contains(7654321));
  EXPECT_EQ(m.GetAs<PString>(1234567)->Str(), "account");
  // No key object was allocated: pairs carry the key inline.
}

TEST(PLongHashMapTest, RestartKeepsIntKeys) {
  Fixture f;
  {
    PLongHashMap m(*f.rt, 8);
    for (int64_t k = 0; k < 50; ++k) {
      PString v(*f.rt, "v" + std::to_string(k));
      m.Put(k, &v);
    }
    m.Pwb();
    m.Validate();
    f.rt->root().Put("accounts", &m);
  }
  f.CleanReopen();
  const auto m = f.rt->root().GetAs<PLongHashMap>("accounts");
  EXPECT_EQ(m->Size(), 50u);
  EXPECT_EQ(m->GetAs<PString>(31)->Str(), "v31");
}

// ---- Property test: random ops mirror a std::map ----------------------------------

TEST(PMapPropertyTest, RandomOpsMatchReferenceAcrossRestart) {
  Fixture f;
  std::map<std::string, std::string> ref;
  {
    PStringHashMap m(*f.rt, 8);
    Xorshift rng(99);
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "k" + std::to_string(rng.NextBelow(200));
      if (rng.NextBelow(3) == 0) {
        m.Remove(key);
        ref.erase(key);
      } else {
        const std::string val = "v" + std::to_string(i);
        PString v(*f.rt, val);
        m.Put(key, &v);
        ref[key] = val;
      }
    }
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
  }
  f.CleanReopen();
  const auto m = f.rt->root().GetAs<PStringHashMap>("m");
  ASSERT_EQ(m->Size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto pv = m->GetAs<PString>(k);
    ASSERT_NE(pv, nullptr) << k;
    EXPECT_EQ(pv->Str(), v) << k;
  }
}

}  // namespace
}  // namespace jnvm::pdt
