// Tests for the PSet adapters (§4.3.2 sets) and the ordered-map range scans.
#include <gtest/gtest.h>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"

namespace jnvm::pdt {
namespace {

struct Fixture {
  Fixture() {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = core::JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
};

// ---- PSet ---------------------------------------------------------------------

TEST(PSetTest, AddContainsRemove) {
  Fixture f;
  PStringHashSet set(*f.rt, 8);
  set.Add("alpha");
  set.Add("beta");
  set.Add("alpha");  // idempotent
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_TRUE(set.Contains("alpha"));
  EXPECT_FALSE(set.Contains("gamma"));
  EXPECT_TRUE(set.Remove("alpha"));
  EXPECT_FALSE(set.Contains("alpha"));
  EXPECT_FALSE(set.Remove("alpha"));
}

TEST(PSetTest, IntKeyedSet) {
  Fixture f;
  PLongHashSet set(*f.rt, 8);
  for (int64_t k = 0; k < 100; k += 3) {
    set.Add(k);
  }
  EXPECT_EQ(set.Size(), 34u);
  EXPECT_TRUE(set.Contains(99));
  EXPECT_FALSE(set.Contains(98));
}

TEST(PSetTest, SurvivesRestart) {
  Fixture f;
  {
    PStringTreeSet set(*f.rt, 8);
    for (const char* member : {"x", "y", "z"}) {
      set.Add(member);
    }
    set.map().Pwb();
    set.map().Validate();
    f.rt->root().Put("set", &set.map());
  }
  f.rt.reset();
  f.rt = core::JnvmRuntime::Open(f.dev.get());
  PStringTreeSet set(f.rt->root().GetAs<PStringTreeMap>("set"));
  EXPECT_EQ(set.Size(), 3u);
  EXPECT_TRUE(set.Contains("y"));
  std::vector<std::string> members;
  set.ForEach([&](const std::string& m) { members.push_back(m); });
  EXPECT_EQ(members, (std::vector<std::string>{"x", "y", "z"}));  // ordered mirror
}

// ---- Range scans -----------------------------------------------------------------

template <typename MapT>
class OrderedRangeTest : public ::testing::Test {};

using OrderedMaps = ::testing::Types<PStringTreeMap, PStringSkipListMap>;
TYPED_TEST_SUITE(OrderedRangeTest, OrderedMaps);

TYPED_TEST(OrderedRangeTest, RangeScanVisitsSortedWindow) {
  Fixture f;
  TypeParam m(*f.rt, 16);
  PString v(*f.rt, "x");
  for (int i = 0; i < 50; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    m.Put(key, &v, false);
  }
  std::vector<std::string> seen;
  const size_t n = m.ForEachRange(
      "k010", "k020",
      [&](const std::string& k, core::Handle<core::PObject>) { seen.push_back(k); });
  EXPECT_EQ(n, 10u);
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), "k010");
  EXPECT_EQ(seen.back(), "k019");
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TYPED_TEST(OrderedRangeTest, EmptyAndEdgeRanges) {
  Fixture f;
  TypeParam m(*f.rt, 16);
  PString v(*f.rt, "x");
  m.Put("b", &v, false);
  m.Put("d", &v, false);
  size_t n = m.ForEachRange("e", "z", [](const std::string&, auto) {});
  EXPECT_EQ(n, 0u);
  n = m.ForEachRange("a", "c", [](const std::string&, auto) {});
  EXPECT_EQ(n, 1u);  // only "b"
  n = m.ForEachRange("b", "b", [](const std::string&, auto) {});
  EXPECT_EQ(n, 0u);  // empty half-open interval
}

TEST(OrderedRangeTest64, IntKeyRangeOnTreeMap) {
  Fixture f;
  PLongTreeMap m(*f.rt, 16);
  PString v(*f.rt, "x");
  for (int64_t k = 0; k < 100; k += 10) {
    m.Put(k, &v, false);
  }
  std::vector<int64_t> seen;
  m.ForEachRange(25, 75, [&](const int64_t& k, auto) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<int64_t>{30, 40, 50, 60, 70}));
}

}  // namespace
}  // namespace jnvm::pdt
