// Edge cases and failure injection at the runtime level: heap exhaustion,
// log overflow, class-table limits, and heap relocation (§4.4).
#include <gtest/gtest.h>

#include <cstring>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"
#include "src/pdt/pstring.h"

namespace jnvm::core {
namespace {

class Node final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<Node>("edge.Node", &Node::Trace));
    return info;
  }
  explicit Node(Resurrect) {}
  Node(JnvmRuntime& rt, int64_t v) {
    AllocatePersistent(rt, Class(), kL.bytes);
    WriteField<int64_t>(kL.off[1], v);
  }
  int64_t Value() const { return ReadField<int64_t>(kL.off[1]); }
  Handle<Node> Next() const { return ReadPObjectAs<Node>(kL.off[0]); }
  void UpdateNext(Node* n) { UpdateRef(kL.off[0], n); }
  static void Trace(ObjectView& v, RefVisitor& r) { r.VisitRef(v, kL.off[0]); }

 private:
  static constexpr auto kL = PackFields<2>({kRefField, 8});
};

// ---- Heap relocation (§4.4) ----------------------------------------------------
// "J-NVM ensures that the persistent heap is relocatable... it stores only
// offsets relative to the beginning of the heap." A byte-for-byte copy of
// the device must open as an identical, fully functional heap.

TEST(RelocationTest, ByteCopyOfDeviceOpensIdentically) {
  nvm::DeviceOptions o;
  o.size_bytes = 16 << 20;
  auto dev1 = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = JnvmRuntime::Format(dev1.get());
    pdt::PStringHashMap m(*rt, 8);
    for (int i = 0; i < 50; ++i) {
      pdt::PString v(*rt, "payload" + std::to_string(i));
      m.Put("key" + std::to_string(i), &v);
    }
    m.Pwb();
    m.Validate();
    rt->root().Put("m", &m);
  }  // clean shutdown

  // Relocate: copy the raw bytes to a different device (different base
  // address in DRAM — as if the DAX file were mapped elsewhere).
  auto dev2 = std::make_unique<nvm::PmemDevice>(o);
  std::memcpy(dev2->raw(), dev1->raw(), o.size_bytes);

  auto rt = JnvmRuntime::Open(dev2.get());
  EXPECT_TRUE(VerifyHeapIntegrity(*rt).ok());
  const auto m = rt->root().GetAs<pdt::PStringHashMap>("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Size(), 50u);
  EXPECT_EQ(m->GetAs<pdt::PString>("key17")->Str(), "payload17");
  // And the relocated heap is fully writable.
  pdt::PString fresh(*rt, "after-move");
  m->Put("new", &fresh);
  EXPECT_EQ(m->GetAs<pdt::PString>("new")->Str(), "after-move");
}

TEST(RelocationTest, RelocatedCopyDivergesIndependently) {
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  auto dev1 = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = JnvmRuntime::Format(dev1.get());
    Node n(*rt, 1);
    rt->root().Put("n", &n);
  }
  auto dev2 = std::make_unique<nvm::PmemDevice>(o);
  std::memcpy(dev2->raw(), dev1->raw(), o.size_bytes);

  auto rt1 = JnvmRuntime::Open(dev1.get());
  auto rt2 = JnvmRuntime::Open(dev2.get());
  auto n2 = rt2->root().GetAs<Node>("n");
  {
    FaBlock fa(*rt2);
    Node child(*rt2, 99);
    n2->UpdateNext(&child);
  }
  // The original heap is untouched by mutations of the copy.
  EXPECT_EQ(rt1->root().GetAs<Node>("n")->Next(), nullptr);
  EXPECT_EQ(rt2->root().GetAs<Node>("n")->Next()->Value(), 99);
}

// ---- Exhaustion -----------------------------------------------------------------

TEST(ExhaustionDeathTest, HeapFullAborts) {
  nvm::DeviceOptions o;
  o.size_bytes = 2 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  auto rt = JnvmRuntime::Format(dev.get());
  EXPECT_DEATH(
      {
        for (int i = 0; i < 100'000; ++i) {
          Node n(*rt, i);
          rt->root().Put("k" + std::to_string(i), &n);
        }
      },
      "full");
}

TEST(ExhaustionDeathTest, RedoLogOverflowAborts) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  RuntimeOptions ropts;
  ropts.heap.log_slot_bytes = 4096;  // tiny log: ~170 entries
  auto rt = JnvmRuntime::Format(dev.get(), ropts);
  EXPECT_DEATH(
      {
        rt->FaStart();
        for (int i = 0; i < 10'000; ++i) {
          Node n(*rt, i);  // one log entry per allocation
        }
        rt->FaEnd();
      },
      "redo-log capacity");
}

// ---- Class table ------------------------------------------------------------------

TEST(ClassTableTest, ManyClassesAcrossRestart) {
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  std::vector<uint16_t> ids;
  {
    auto rt = JnvmRuntime::Format(dev.get());
    for (int i = 0; i < 100; ++i) {
      ids.push_back(rt->heap().InternClassId("edge.Class" + std::to_string(i)));
    }
  }
  auto rt = JnvmRuntime::Open(dev.get());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rt->heap().InternClassId("edge.Class" + std::to_string(i)), ids[i]);
  }
}

// ---- Deep structures ----------------------------------------------------------------

TEST(DeepGraphTest, LongChainRecoversWithoutStackOverflow) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  constexpr int kDepth = 50'000;
  {
    auto rt = JnvmRuntime::Format(dev.get());
    // Build a 50k-deep linked list with the atomic update protocol.
    Node head(*rt, 0);
    head.Pwb();
    head.Validate();
    rt->root().Put("head", &head);
    auto cur = rt->root().GetAs<Node>("head");
    for (int i = 1; i < kDepth; ++i) {
      Node next(*rt, i);
      cur->UpdateNext(&next);  // validates + fences internally
      cur = cur->Next();
    }
  }
  // Graph recovery must traverse the whole chain iteratively.
  auto rt = JnvmRuntime::Open(dev.get());
  EXPECT_GE(rt->recovery_report().traversed_objects,
            static_cast<uint64_t>(kDepth));
  // Spot-check depth and contents.
  auto cur = rt->root().GetAs<Node>("head");
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(cur, nullptr);
    EXPECT_EQ(cur->Value(), i);
    cur = cur->Next();
  }
  EXPECT_TRUE(VerifyHeapIntegrity(*rt).ok());
}

TEST(DeepGraphTest, WideFanoutRecovers) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  constexpr int kWidth = 20'000;
  {
    auto rt = JnvmRuntime::Format(dev.get());
    pdt::PStringHashMap m(*rt, 2 * kWidth);
    m.Pwb();
    m.Validate();
    rt->root().Put("m", &m);
    for (int i = 0; i < kWidth; ++i) {
      pdt::PString v(*rt, "v" + std::to_string(i));
      m.Put("k" + std::to_string(i), &v);
    }
  }
  auto rt = JnvmRuntime::Open(dev.get());
  const auto m = rt->root().GetAs<pdt::PStringHashMap>("m");
  EXPECT_EQ(m->Size(), static_cast<size_t>(kWidth));
  EXPECT_TRUE(VerifyHeapIntegrity(*rt).ok());
}

}  // namespace
}  // namespace jnvm::core
