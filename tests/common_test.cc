// Unit tests for src/common: PRNG, distributions, histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"

namespace jnvm {
namespace {

TEST(Xorshift, DeterministicForSeed) {
  Xorshift a(7);
  Xorshift b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xorshift, DifferentSeedsDiffer) {
  Xorshift a(1);
  Xorshift b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Xorshift, NextBelowInRange) {
  Xorshift rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Xorshift, NextDoubleInUnitInterval) {
  Xorshift rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipfian, StaysInRange) {
  ZipfianGenerator gen(1000, 0.99, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(Zipfian, IsSkewedTowardsLowRanks) {
  ZipfianGenerator gen(100000, 0.99, 1);
  uint64_t top10 = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next() < 10) {
      ++top10;
    }
  }
  // With theta=0.99 over 100k items, the top-10 ranks draw a large share.
  EXPECT_GT(top10, static_cast<uint64_t>(kDraws) / 10);
}

TEST(Zipfian, ScrambledStaysInRange) {
  ZipfianGenerator gen(12345, 0.99, 9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.NextScrambled(), 12345u);
  }
}

TEST(Latest, SkewsTowardsNewestKeys) {
  LatestGenerator gen(10000, 3);
  uint64_t newest_quartile = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t k = gen.Next();
    ASSERT_LT(k, 10000u);
    if (k >= 7500) {
      ++newest_quartile;
    }
  }
  EXPECT_GT(newest_quartile, static_cast<uint64_t>(kDraws) * 6 / 10);
}

TEST(Latest, GrowMovesTheWindow) {
  LatestGenerator gen(100, 3);
  gen.Grow(200);
  bool saw_new = false;
  for (int i = 0; i < 1000; ++i) {
    if (gen.Next() >= 100) {
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_new);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_EQ(h.min_ns(), 1000u);
  // Bucketing error bound ~1.6%.
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.5)), 1000.0, 20.0);
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h;
  Xorshift rng(5);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBelow(1000000));
  }
  EXPECT_LE(h.ValueAtQuantile(0.5), h.ValueAtQuantile(0.9));
  EXPECT_LE(h.ValueAtQuantile(0.9), h.ValueAtQuantile(0.99));
  EXPECT_LE(h.ValueAtQuantile(0.99), h.max_ns());
}

TEST(Histogram, UniformMedianNearHalf) {
  Histogram h;
  Xorshift rng(6);
  for (int i = 0; i < 200000; ++i) {
    h.Record(rng.NextBelow(1000000));
  }
  const double p50 = static_cast<double>(h.ValueAtQuantile(0.5));
  EXPECT_NEAR(p50, 500000.0, 25000.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max_ns(), 1000000u);
  EXPECT_EQ(a.min_ns(), 10u);
}

TEST(Histogram, MeanMatches) {
  Histogram h;
  for (uint64_t v : {100u, 200u, 300u}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);
}

TEST(Histogram, LargeValuesBounded) {
  Histogram h;
  h.Record(1ull << 62);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1ull << 62);
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

}  // namespace
}  // namespace jnvm
