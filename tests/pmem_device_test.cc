// Unit + property tests for the simulated NVMM device, in particular the
// strict-mode crash semantics (the foundation of every crash test above it).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/nvm/pmem_device.h"

namespace jnvm::nvm {
namespace {

DeviceOptions Strict(size_t bytes = 1 << 16) {
  DeviceOptions o;
  o.size_bytes = bytes;
  o.strict = true;
  return o;
}

DeviceOptions Fast(size_t bytes = 1 << 16) {
  DeviceOptions o;
  o.size_bytes = bytes;
  return o;
}

TEST(PmemDevice, ReadBackWrites) {
  PmemDevice dev(Fast());
  dev.Write<uint64_t>(128, 0xdeadbeefull);
  EXPECT_EQ(dev.Read<uint64_t>(128), 0xdeadbeefull);
}

TEST(PmemDevice, ZeroInitialized) {
  PmemDevice dev(Fast());
  EXPECT_EQ(dev.Read<uint64_t>(0), 0u);
  EXPECT_EQ(dev.Read<uint64_t>(4096), 0u);
}

TEST(PmemDevice, BytesRoundTrip) {
  PmemDevice dev(Fast());
  const char msg[] = "hello, NVMM!";
  dev.WriteBytes(1000, msg, sizeof(msg));
  char out[sizeof(msg)];
  dev.ReadBytes(1000, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST(PmemDevice, StatsCount) {
  PmemDevice dev(Fast());
  dev.ResetStats();
  dev.Write<uint32_t>(0, 1);
  dev.Read<uint32_t>(0);
  dev.Pwb(0);
  dev.Pfence();
  dev.Psync();
  const DeviceStats s = dev.stats();
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.pwbs, 1u);
  EXPECT_EQ(s.pfences, 1u);
  EXPECT_EQ(s.psyncs, 1u);
}

TEST(PmemDeviceStrict, FencedWritesSurviveCrash) {
  PmemDevice dev(Strict());
  dev.Write<uint64_t>(256, 42);
  dev.Pwb(256);
  dev.Pfence();
  dev.Crash(/*seed=*/1);
  EXPECT_EQ(dev.Read<uint64_t>(256), 42u);
}

TEST(PmemDeviceStrict, UnflushedWriteMayRollBack) {
  // Sweep seeds: an unflushed line must roll back for at least one seed and
  // survive (be evicted) for at least one other.
  bool rolled_back = false;
  bool survived = false;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    PmemDevice dev(Strict());
    dev.Write<uint64_t>(512, 7);
    dev.Crash(seed);
    if (dev.Read<uint64_t>(512) == 7) {
      survived = true;
    } else {
      rolled_back = true;
      EXPECT_EQ(dev.Read<uint64_t>(512), 0u);
    }
  }
  EXPECT_TRUE(rolled_back);
  EXPECT_TRUE(survived);
}

TEST(PmemDeviceStrict, PwbWithoutFenceIsNotDurable) {
  bool rolled_back = false;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    PmemDevice dev(Strict());
    dev.Write<uint64_t>(512, 7);
    dev.Pwb(512);  // queued but never fenced
    dev.Crash(seed);
    if (dev.Read<uint64_t>(512) != 7) {
      rolled_back = true;
    }
  }
  EXPECT_TRUE(rolled_back);
}

TEST(PmemDeviceStrict, StoreAfterPwbRequiresNewPwb) {
  PmemDevice dev(Strict());
  dev.Write<uint64_t>(512, 1);
  dev.Pwb(512);
  dev.Write<uint64_t>(512, 2);  // not covered by the earlier Pwb
  EXPECT_EQ(dev.UnflushedLineCount(), 1u);
  dev.Pfence();
  // Line was downgraded to dirty: the fence does not drain it.
  EXPECT_EQ(dev.UnflushedLineCount(), 1u);
  dev.Pwb(512);
  dev.Pfence();
  EXPECT_EQ(dev.UnflushedLineCount(), 0u);
  dev.Crash(3);
  EXPECT_EQ(dev.Read<uint64_t>(512), 2u);
}

TEST(PmemDeviceStrict, RollbackRestoresLastDurableNotZero) {
  PmemDevice dev(Strict());
  dev.Write<uint64_t>(512, 1);
  dev.Pwb(512);
  dev.Pfence();  // 1 is durable
  dev.Write<uint64_t>(512, 2);
  bool rolled_back = false;
  for (uint64_t seed = 0; seed < 64 && !rolled_back; ++seed) {
    PmemDevice d2(Strict());
    d2.Write<uint64_t>(512, 1);
    d2.Pwb(512);
    d2.Pfence();
    d2.Write<uint64_t>(512, 2);
    d2.Crash(seed);
    const uint64_t v = d2.Read<uint64_t>(512);
    EXPECT_TRUE(v == 1 || v == 2);
    rolled_back = rolled_back || v == 1;
  }
  EXPECT_TRUE(rolled_back);
}

TEST(PmemDeviceStrict, IndependentLinesIndependentFates) {
  // With enough lines, a single crash should both keep and lose some.
  PmemDevice dev(Strict(1 << 20));
  const int kLines = 256;
  for (int i = 0; i < kLines; ++i) {
    dev.Write<uint64_t>(static_cast<Offset>(i) * kCacheLine, 99);
  }
  dev.Crash(7);
  int kept = 0;
  for (int i = 0; i < kLines; ++i) {
    if (dev.Read<uint64_t>(static_cast<Offset>(i) * kCacheLine) == 99) {
      ++kept;
    }
  }
  EXPECT_GT(kept, 0);
  EXPECT_LT(kept, kLines);
}

TEST(PmemDeviceStrict, ScheduledCrashThrows) {
  PmemDevice dev(Strict());
  dev.ScheduleCrashAfter(2);
  dev.Write<uint64_t>(0, 1);  // event 1
  dev.Write<uint64_t>(8, 2);  // event 2
  EXPECT_THROW(dev.Write<uint64_t>(16, 3), SimulatedCrash);
  // The crashed store never applied.
  EXPECT_EQ(dev.Read<uint64_t>(16), 0u);
}

TEST(PmemDeviceStrict, CancelScheduledCrash) {
  PmemDevice dev(Strict());
  dev.ScheduleCrashAfter(1);
  dev.CancelScheduledCrash();
  EXPECT_NO_THROW(dev.Write<uint64_t>(0, 1));
  EXPECT_NO_THROW(dev.Write<uint64_t>(8, 2));
}

TEST(PmemDeviceStrict, PwbRangeCoversAllLines) {
  PmemDevice dev(Strict());
  char buf[300];
  memset(buf, 0xab, sizeof(buf));
  dev.WriteBytes(100, buf, sizeof(buf));  // spans several lines
  dev.PwbRange(100, sizeof(buf));
  dev.Pfence();
  dev.Crash(11);
  char out[300];
  dev.ReadBytes(100, out, sizeof(out));
  EXPECT_EQ(memcmp(out, buf, sizeof(buf)), 0);
}

TEST(PmemDeviceStrict, CrashClearsTracking) {
  PmemDevice dev(Strict());
  dev.Write<uint64_t>(0, 1);
  dev.Crash(1);
  EXPECT_EQ(dev.UnflushedLineCount(), 0u);
}

TEST(PmemDevice, MemsetTrackedLikeStore) {
  PmemDevice dev(Strict());
  dev.Memset(256, 0xff, 64);
  EXPECT_EQ(dev.UnflushedLineCount(), 1u);
  dev.PwbRange(256, 64);
  dev.Pfence();
  dev.Crash(5);
  EXPECT_EQ(dev.Read<uint8_t>(300), 0xffu);
}

TEST(PmemDeviceStrict, SaveLoadRoundTripKeepsStrictTracking) {
  const std::string path = ::testing::TempDir() + "/jnvm_dev_strict_rt.bin";
  {
    PmemDevice dev(Strict());
    dev.Write<uint64_t>(128, 0x1122334455667788ull);
    dev.Pwb(128);
    dev.Psync();
    ASSERT_EQ(dev.UnflushedLineCount(), 0u);
    ASSERT_TRUE(dev.SaveTo(path));
  }
  DeviceOptions opts;
  opts.strict = true;
  auto dev = PmemDevice::LoadFrom(path, opts);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->size(), size_t{1} << 16);  // size comes from the image
  EXPECT_EQ(dev->Read<uint64_t>(128), 0x1122334455667788ull);
  // The loaded device is a fresh strict device: unfenced writes to it are
  // tracked and still roll back on the unlucky coin flip.
  dev->Write<uint64_t>(128, 0xffffffffffffffffull);
  EXPECT_EQ(dev->UnflushedLineCount(), 1u);
  dev->Crash(3);  // seed 3 reverts this line (verified below via the write)
  EXPECT_EQ(dev->UnflushedLineCount(), 0u);
  const uint64_t after = dev->Read<uint64_t>(128);
  EXPECT_TRUE(after == 0x1122334455667788ull || after == 0xffffffffffffffffull);
  std::remove(path.c_str());
}

TEST(PmemDeviceStrict, SaveWithUnflushedLinesFails) {
  const std::string path = ::testing::TempDir() + "/jnvm_dev_unflushed.bin";
  PmemDevice dev(Strict());
  dev.Write<uint64_t>(0, 42);
  ASSERT_GT(dev.UnflushedLineCount(), 0u);
  // An image of a half-flushed device would resurrect state the hardware
  // never guaranteed; SaveTo must refuse and write nothing.
  EXPECT_FALSE(dev.SaveTo(path));
  EXPECT_EQ(PmemDevice::LoadFrom(path), nullptr);
  // Psync alone is not enough: it drains only pwb-queued lines, and this
  // line was never flushed. Quiesce properly, then the save succeeds.
  dev.Psync();
  EXPECT_FALSE(dev.SaveTo(path));
  dev.Pwb(0);
  dev.Psync();
  EXPECT_TRUE(dev.SaveTo(path));
  auto loaded = PmemDevice::LoadFrom(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Read<uint64_t>(0), 42u);
  std::remove(path.c_str());
}

TEST(PmemDeviceStrict, LoadFromTruncatedImageFails) {
  const std::string path = ::testing::TempDir() + "/jnvm_dev_trunc.bin";
  {
    PmemDevice dev(Strict());
    dev.Write<uint64_t>(0, 7);
    dev.Pwb(0);
    dev.Psync();
    ASSERT_TRUE(dev.SaveTo(path));
  }
  // Chop the tail off the image; the loader must reject it.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), full / 2), 0);
  EXPECT_EQ(PmemDevice::LoadFrom(path), nullptr);
  std::remove(path.c_str());
}

TEST(PmemDeviceStrict, EventCounterTicksStoresPwbsFences) {
  PmemDevice dev(Strict());
  const uint64_t base = dev.PersistenceEventCount();
  dev.Write<uint64_t>(0, 1);   // 1 store event
  dev.Pwb(0);                  // 1 pwb event
  dev.Pfence();                // 1 fence event
  EXPECT_EQ(dev.PersistenceEventCount(), base + 3);
}

TEST(PmemDeviceStrict, TraceHashDistinguishesContentAndOrder) {
  PmemDevice a(Strict());
  PmemDevice b(Strict());
  a.Write<uint64_t>(0, 1);
  b.Write<uint64_t>(0, 1);
  EXPECT_EQ(a.TraceHash(), b.TraceHash());  // identical traces agree
  PmemDevice c(Strict());
  c.Write<uint64_t>(0, 2);  // same offset, different bytes
  EXPECT_NE(a.TraceHash(), c.TraceHash());
  PmemDevice d(Strict());
  d.Write<uint64_t>(8, 1);  // same bytes, different offset
  EXPECT_NE(a.TraceHash(), d.TraceHash());
}

}  // namespace
}  // namespace jnvm::nvm
