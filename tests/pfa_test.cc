// Tests for failure-atomic blocks (§4.2): redo-log commit, in-flight block
// redirection, deferred frees, nesting, aborts, and crash atomicity sweeps.
#include <gtest/gtest.h>

#include "src/core/root_map.h"
#include "src/core/runtime.h"

namespace jnvm::pfa {
namespace {

using core::ClassInfo;
using core::Handle;
using core::JnvmRuntime;
using core::MakeClassInfo;
using core::ObjectView;
using core::PackFields;
using core::PObject;
using core::RefVisitor;
using core::Resurrect;

// An account object used to test multi-field atomicity.
class Account final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<Account>("pfa.Account", &Account::Trace));
    return info;
  }

  explicit Account(Resurrect) {}
  Account(JnvmRuntime& rt, int64_t balance) {
    AllocatePersistent(rt, Class(), kL.bytes);
    SetBalance(balance);
  }

  int64_t Balance() const { return ReadField<int64_t>(kL.off[0]); }
  void SetBalance(int64_t v) { WriteField<int64_t>(kL.off[0], v); }
  Handle<Account> Next() const { return ReadPObjectAs<Account>(kL.off[1]); }
  void SetNext(const Account* a) { WritePObject(kL.off[1], a); }

  static void Trace(ObjectView& v, RefVisitor& r) { r.VisitRef(v, kL.off[1]); }

 private:
  static constexpr auto kL = PackFields<2>({8, core::kRefField});
};

struct Fixture {
  explicit Fixture(bool strict = true, size_t bytes = 4 << 20) {
    nvm::DeviceOptions o;
    o.size_bytes = bytes;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }

  void CrashAndReopen(uint64_t seed) {
    rt->Abandon();
    rt.reset();
    dev->Crash(seed);
    rt = JnvmRuntime::Open(dev.get());
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

// ---- Commit semantics ---------------------------------------------------------

TEST(FaTest, CommitAppliesWrites) {
  Fixture f;
  Account a(*f.rt, 100);
  f.rt->root().Put("a", &a);
  f.rt->FaStart();
  a.SetBalance(250);
  EXPECT_EQ(a.Balance(), 250) << "reads see own writes inside the block";
  f.rt->FaEnd();
  EXPECT_EQ(a.Balance(), 250);
}

TEST(FaTest, ReadsOutsideSeeOldValueUntilCommit) {
  // The original block stays intact during the FA block (redo, not undo).
  Fixture f;
  Account a(*f.rt, 100);
  f.rt->root().Put("a", &a);
  f.rt->FaStart();
  a.SetBalance(250);
  // A raw view (no FA redirection) still reads the original data.
  ObjectView raw(&f.rt->heap(), a.addr());
  EXPECT_EQ(raw.Read<int64_t>(0), 100);
  f.rt->FaEnd();
  EXPECT_EQ(raw.Read<int64_t>(0), 250);
}

TEST(FaTest, AllocationValidatedAtCommit) {
  Fixture f;
  f.rt->FaStart();
  Account a(*f.rt, 10);
  EXPECT_FALSE(a.IsValidObject());
  f.rt->root().Wput("a", &a);
  f.rt->FaEnd();
  EXPECT_TRUE(a.IsValidObject());
}

TEST(FaTest, NestedBlocksCommitOnce) {
  Fixture f;
  Account a(*f.rt, 1);
  f.rt->root().Put("a", &a);
  f.rt->FaStart();
  a.SetBalance(2);
  f.rt->FaStart();
  a.SetBalance(3);
  f.rt->FaEnd();
  EXPECT_EQ(f.rt->FaDepth(), 1);
  ObjectView raw(&f.rt->heap(), a.addr());
  EXPECT_EQ(raw.Read<int64_t>(0), 1) << "inner end must not commit";
  f.rt->FaEnd();
  EXPECT_EQ(raw.Read<int64_t>(0), 3);
}

TEST(FaTest, FreeDeferredToCommit) {
  Fixture f;
  Account a(*f.rt, 1);
  a.Pwb();
  a.Validate();
  f.rt->Pfence();
  const nvm::Offset addr = a.addr();
  f.rt->FaStart();
  f.rt->Free(a);
  EXPECT_FALSE(a.attached());
  // Persistent state not yet touched:
  EXPECT_TRUE(f.rt->heap().IsValid(addr));
  f.rt->FaEnd();
  EXPECT_FALSE(f.rt->heap().IsValid(addr));
}

TEST(FaTest, AbortDiscardsEverything) {
  Fixture f;
  Account a(*f.rt, 100);
  a.Pwb();
  a.Validate();
  f.rt->Pfence();
  f.rt->FaStart();
  a.SetBalance(999);
  Account born(*f.rt, 7);
  const nvm::Offset born_addr = born.addr();
  f.rt->FaAbort();
  EXPECT_EQ(f.rt->FaDepth(), 0);
  EXPECT_EQ(a.Balance(), 100);
  EXPECT_FALSE(f.rt->heap().IsValid(born_addr));
}

TEST(FaTest, InflightBlocksRecycledAfterCommit) {
  Fixture f;
  Account a(*f.rt, 1);
  a.Pwb();
  a.Validate();
  f.rt->Pfence();
  const auto before = f.rt->heap().stats();
  for (int i = 0; i < 10; ++i) {
    f.rt->FaStart();
    a.SetBalance(i);
    f.rt->FaEnd();
  }
  const auto after = f.rt->heap().stats();
  // Every in-flight block allocation was matched by a free.
  EXPECT_EQ(after.blocks_allocated - before.blocks_allocated,
            after.blocks_freed - before.blocks_freed);
}

TEST(FaTest, MultiBlockObjectAtomicUpdate) {
  Fixture f;
  Account a(*f.rt, 0);
  // Build a chain of three accounts and update all in one block.
  Account b(*f.rt, 0);
  Account c(*f.rt, 0);
  a.SetNext(&b);
  b.SetNext(&c);
  for (Account* acc : {&a, &b, &c}) {
    acc->Pwb();
    acc->Validate();
  }
  f.rt->Pfence();
  f.rt->root().Put("a", &a);

  f.rt->FaStart();
  a.SetBalance(1);
  b.SetBalance(2);
  c.SetBalance(3);
  f.rt->FaEnd();
  EXPECT_EQ(a.Balance(), 1);
  EXPECT_EQ(b.Balance(), 2);
  EXPECT_EQ(c.Balance(), 3);
}

TEST(FaTest, ReadOnlyBlockIsCheap) {
  Fixture f;
  Account a(*f.rt, 42);
  a.Pwb();
  a.Validate();
  f.rt->Pfence();
  f.dev->ResetStats();
  f.rt->FaStart();
  EXPECT_EQ(a.Balance(), 42);
  f.rt->FaEnd();
  EXPECT_EQ(f.dev->stats().pfences, 0u) << "no fences for a read-only block";
}

// ---- Crash atomicity: the money-transfer property ------------------------------

// Transfers money between two accounts inside a failure-atomic block while
// sweeping the crash point over every persistence event; after recovery the
// total balance must be conserved — the transfer happened entirely or not at
// all (§2.5).
TEST(FaCrashTest, TransferIsAllOrNothing) {
  // Determine roughly how many events one transfer takes.
  uint64_t probe_events = 400;
  for (uint64_t crash_at = 1; crash_at < probe_events; crash_at += 7) {
    Fixture f;
    {
      Account a(*f.rt, 1000);
      Account b(*f.rt, 0);
      f.rt->root().Put("a", &a);
      f.rt->root().Put("b", &b);
      f.rt->Psync();

      f.dev->ScheduleCrashAfter(crash_at);
      try {
        f.rt->FaStart();
        a.SetBalance(a.Balance() - 300);
        b.SetBalance(b.Balance() + 300);
        f.rt->FaEnd();
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
    }
    f.CrashAndReopen(crash_at * 31 + 7);
    const auto a = f.rt->root().GetAs<Account>("a");
    const auto b = f.rt->root().GetAs<Account>("b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    const int64_t total = a->Balance() + b->Balance();
    EXPECT_EQ(total, 1000) << "crash point " << crash_at;
    const bool before = a->Balance() == 1000 && b->Balance() == 0;
    const bool after = a->Balance() == 700 && b->Balance() == 300;
    EXPECT_TRUE(before || after) << "torn transfer at crash point " << crash_at;
  }
}

TEST(FaCrashTest, AllocationInBlockNeverHalfVisible) {
  for (uint64_t crash_at = 1; crash_at < 200; crash_at += 5) {
    Fixture f;
    {
      f.dev->ScheduleCrashAfter(crash_at);
      try {
        f.rt->FaStart();
        Account a(*f.rt, 555);
        f.rt->root().Wput("acc", &a);
        f.rt->FaEnd();
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
    }
    f.CrashAndReopen(crash_at);
    const auto a = f.rt->root().GetAs<Account>("acc");
    if (a != nullptr) {
      EXPECT_EQ(a->Balance(), 555) << "crash point " << crash_at;
    }
  }
}

// ---- Log replay mechanics -------------------------------------------------------

TEST(FaLogTest, CommittedLogReplaysIdempotently) {
  Fixture f;
  Account a(*f.rt, 1);
  a.Pwb();
  a.Validate();
  f.rt->root().Put("a", &a);

  // Hand-craft a committed log: an update entry whose in-flight block holds
  // balance = 77, then replay it twice.
  heap::Heap& h = f.rt->heap();
  const nvm::Offset copy = h.AllocBlockRaw();
  h.dev().Write<uint64_t>(copy, 0);
  std::vector<char> payload(h.payload_per_block(), 0);
  h.dev().ReadBytes(h.PayloadOf(a.addr()), payload.data(), payload.size());
  int64_t v = 77;
  memcpy(payload.data(), &v, sizeof(v));
  h.dev().WriteBytes(h.PayloadOf(copy), payload.data(), payload.size());
  h.dev().PwbRange(copy, h.block_size());

  FaLog log(&h, 0);
  log.Append({EntryType::kUpdate, a.addr(), copy});
  log.PersistAndMarkCommitted();
  FaHooks hooks;
  log.Apply(&h, hooks);
  log.Apply(&h, hooks);  // idempotent
  EXPECT_EQ(a.Balance(), 77);
  log.Erase();
  EXPECT_EQ(log.count(), 0u);
  EXPECT_FALSE(log.committed());
}

TEST(FaLogTest, CapacityIsGenerous) {
  Fixture f;
  FaLog log(&f.rt->heap(), 0);
  EXPECT_GT(log.capacity_entries(), 1000u);
}

}  // namespace
}  // namespace jnvm::pfa
