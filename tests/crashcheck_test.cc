// Tests for the crash-consistency model checker (src/crashcheck): bounded
// sweeps over every workload kind, determinism of the crash images, repro
// fidelity of reported violations, and the planted-bug meta-check.
#include <gtest/gtest.h>

#include <cstring>

#include "src/crashcheck/checker.h"

namespace jnvm {
namespace {

constexpr uint64_t kScriptSeed = 42;
constexpr size_t kOps = 40;

crashcheck::CheckerOptions BoundedOptions() {
  crashcheck::CheckerOptions o;
  o.max_points = 80;  // bounded for CI; the jnvm_crashmc tool sweeps stride 1
  o.eviction_seeds = {1, 7, 1337};
  return o;
}

// ---- Bounded sweep per workload kind ----------------------------------------

class SweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SweepTest, BoundedSweepFindsNoViolations) {
  crashcheck::CrashChecker checker(
      crashcheck::MakeWorkload(GetParam(), kScriptSeed, kOps), BoundedOptions());
  const auto res = checker.Sweep();
  EXPECT_TRUE(res.ok()) << res.Summary();
  EXPECT_GE(res.points_explored, 60u);
  EXPECT_EQ(res.runs, res.points_explored * 3);
  EXPECT_GT(res.setup_events, 0u);
  EXPECT_GT(res.total_events, res.setup_events);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SweepTest,
                         ::testing::ValuesIn(crashcheck::WorkloadKinds()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Recording determinism ---------------------------------------------------

TEST(CrashCheckDeterminism, RecordingsAreReproducible) {
  crashcheck::CrashChecker a(
      crashcheck::MakeWorkload("map-hash", kScriptSeed, kOps), BoundedOptions());
  crashcheck::CrashChecker b(
      crashcheck::MakeWorkload("map-hash", kScriptSeed, kOps), BoundedOptions());
  const auto& ra = a.recording();
  const auto& rb = b.recording();
  EXPECT_EQ(ra.setup_events, rb.setup_events);
  EXPECT_EQ(ra.op_end, rb.op_end);
  EXPECT_EQ(ra.trace_hash, rb.trace_hash);
}

// Runs the workload on a fresh strict device, crashes at `crash_event`,
// applies Crash(eviction_seed), and returns the post-crash device.
std::unique_ptr<nvm::PmemDevice> ReplayAndCrash(const std::string& kind,
                                                uint64_t crash_event,
                                                uint64_t setup_events,
                                                uint64_t eviction_seed) {
  auto w = crashcheck::MakeWorkload(kind, kScriptSeed, kOps);
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  o.strict = true;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  core::RuntimeOptions ro;
  ro.heap.log_slot_count = 4;
  auto rt = core::JnvmRuntime::Format(dev.get(), ro);
  w->Setup(*rt);
  EXPECT_EQ(dev->PersistenceEventCount(), setup_events);
  dev->ScheduleCrashAfter(crash_event - setup_events - 1);
  bool crashed = false;
  try {
    for (size_t i = 0; i < w->op_count(); ++i) {
      w->RunOp(*rt, i);
    }
  } catch (const nvm::SimulatedCrash&) {
    crashed = true;
  }
  EXPECT_TRUE(crashed);
  rt->Abandon();
  dev->Crash(eviction_seed);
  return dev;
}

TEST(CrashCheckDeterminism, SameSeedYieldsByteIdenticalImages) {
  crashcheck::CrashChecker checker(
      crashcheck::MakeWorkload("map-hash", kScriptSeed, kOps), BoundedOptions());
  const auto& rec = checker.recording();
  // A crash point in the middle of the op range, mid-operation.
  const uint64_t e = (rec.setup_events + rec.op_end.back()) / 2;
  auto d1 = ReplayAndCrash("map-hash", e, rec.setup_events, 7);
  auto d2 = ReplayAndCrash("map-hash", e, rec.setup_events, 7);
  ASSERT_EQ(d1->size(), d2->size());
  EXPECT_EQ(d1->TraceHash(), d2->TraceHash());
  EXPECT_EQ(std::memcmp(d1->raw(), d2->raw(), d1->size()), 0);
}

TEST(CrashCheckDeterminism, DifferentSeedsExploreDifferentImages) {
  crashcheck::CrashChecker checker(
      crashcheck::MakeWorkload("map-hash", kScriptSeed, kOps), BoundedOptions());
  const auto& rec = checker.recording();
  // Scan a few crash points; with different eviction seeds at least one must
  // resolve some dirty line differently (identical replays, so any image
  // difference comes from the seed alone).
  bool found_difference = false;
  for (int k = 1; k <= 8 && !found_difference; ++k) {
    const uint64_t e =
        rec.setup_events + k * (rec.op_end.back() - rec.setup_events) / 9;
    auto d1 = ReplayAndCrash("map-hash", e, rec.setup_events, 1);
    auto d2 = ReplayAndCrash("map-hash", e, rec.setup_events, 2);
    EXPECT_EQ(d1->TraceHash(), d2->TraceHash());  // identical traces...
    found_difference =                            // ...different failures
        std::memcmp(d1->raw(), d2->raw(), d1->size()) != 0;
  }
  EXPECT_TRUE(found_difference);
}

// ---- Repro fidelity ----------------------------------------------------------

TEST(CrashCheckRepro, CheckPointReproducesSweepViolations) {
  crashcheck::CheckerOptions opts = BoundedOptions();
  opts.max_points = 40;
  crashcheck::CrashChecker sweeper(
      crashcheck::MakeFaultyWorkload(kScriptSeed, 12), opts);
  const auto res = sweeper.Sweep();
  ASSERT_FALSE(res.ok());
  ASSERT_FALSE(res.violations.empty());
  const auto& v = res.violations.front();
  // A fresh checker instance must reproduce the same violation from the
  // (crash_event, eviction_seed) pair alone — twice.
  crashcheck::CrashChecker repro(
      crashcheck::MakeFaultyWorkload(kScriptSeed, 12), opts);
  const auto first = repro.CheckPoint(v.crash_event, v.eviction_seed);
  const auto second = repro.CheckPoint(v.crash_event, v.eviction_seed);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  bool matched = false;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].invariant, second[i].invariant);
    matched = matched || first[i].invariant == v.invariant;
  }
  EXPECT_TRUE(matched) << "sweep violation not reproduced: " << v.invariant;
}

// ---- Planted-bug meta-check --------------------------------------------------

TEST(CrashCheckMeta, FaultyWorkloadIsDetected) {
  crashcheck::CheckerOptions opts = BoundedOptions();
  opts.max_points = 40;
  crashcheck::CrashChecker checker(
      crashcheck::MakeFaultyWorkload(kScriptSeed, 12), opts);
  const auto res = checker.Sweep();
  EXPECT_GT(res.violation_count, 0u)
      << "the unfenced-publication bug went undetected — the oracle is blind";
  // Reports carry everything needed to reproduce.
  for (const auto& v : res.violations) {
    EXPECT_EQ(v.workload, "faulty-string");
    EXPECT_GT(v.crash_event, res.setup_events);
    EXPECT_FALSE(v.invariant.empty());
    EXPECT_NE(crashcheck::FormatViolation(v).find("repro:"), std::string::npos);
  }
}

// A sanity check on the violation formatter.
TEST(CrashCheckMeta, FormatViolationNamesEverything) {
  crashcheck::Violation v{"map-hash", 812, 7, "committed key k3 lost"};
  const std::string s = crashcheck::FormatViolation(v);
  EXPECT_NE(s.find("workload=map-hash"), std::string::npos);
  EXPECT_NE(s.find("crash_event=812"), std::string::npos);
  EXPECT_NE(s.find("eviction_seed=7"), std::string::npos);
  EXPECT_NE(s.find("committed key k3 lost"), std::string::npos);
  EXPECT_NE(s.find("--repro=812:7"), std::string::npos);
}

}  // namespace
}  // namespace jnvm
