// Tests for the managed-heap/GC simulator.
#include <gtest/gtest.h>

#include "src/gcsim/managed_heap.h"

namespace jnvm::gcsim {
namespace {

GcOptions NoAutoGc() { return GcOptions{.gc_trigger_bytes = 0}; }

TEST(ManagedHeap, AllocAndAccess) {
  ManagedHeap h(NoAutoGc());
  const ObjRef a = h.Alloc(2, 100);
  const ObjRef b = h.Alloc(0, 50);
  h.SetRef(a, 0, b);
  EXPECT_EQ(h.GetRef(a, 0), b);
  EXPECT_EQ(h.GetRef(a, 1), 0u);
  EXPECT_EQ(h.stats().live_objects, 2u);
  EXPECT_EQ(h.stats().live_bytes, 150u);
}

TEST(ManagedHeap, CollectFreesUnreachable) {
  ManagedHeap h(NoAutoGc());
  const ObjRef root = h.Alloc(1, 10);
  h.AddRoot(root);
  const ObjRef kept = h.Alloc(0, 10);
  h.SetRef(root, 0, kept);
  h.Alloc(0, 10);  // garbage
  h.Alloc(0, 10);  // garbage
  h.Collect();
  const GcStats s = h.stats();
  EXPECT_EQ(s.live_objects, 2u);
  EXPECT_EQ(s.swept_total, 2u);
  EXPECT_EQ(s.collections, 1u);
  // Survivors still accessible.
  EXPECT_EQ(h.GetRef(root, 0), kept);
}

TEST(ManagedHeap, RootRemovalKillsSubgraph) {
  ManagedHeap h(NoAutoGc());
  const ObjRef root = h.Alloc(1, 10);
  const ObjRef child = h.Alloc(0, 10);
  h.SetRef(root, 0, child);
  h.AddRoot(root);
  h.Collect();
  EXPECT_EQ(h.stats().live_objects, 2u);
  h.RemoveRoot(root);
  h.Collect();
  EXPECT_EQ(h.stats().live_objects, 0u);
}

TEST(ManagedHeap, ExternalPayloadDestroyed) {
  static int destroyed = 0;
  destroyed = 0;
  struct Payload {
    ~Payload() { ++destroyed; }
  };
  ManagedHeap h(NoAutoGc());
  h.Alloc(0, 10, new Payload, [](void* p) { delete static_cast<Payload*>(p); });
  h.Collect();
  EXPECT_EQ(destroyed, 1);
}

TEST(ManagedHeap, CyclesAreCollected) {
  ManagedHeap h(NoAutoGc());
  const ObjRef a = h.Alloc(1, 10);
  const ObjRef b = h.Alloc(1, 10);
  h.SetRef(a, 0, b);
  h.SetRef(b, 0, a);  // unreachable cycle
  h.Collect();
  EXPECT_EQ(h.stats().live_objects, 0u);
}

TEST(ManagedHeap, GcTriggeredByAllocationVolume) {
  ManagedHeap h(GcOptions{.gc_trigger_bytes = 10'000});
  for (int i = 0; i < 100; ++i) {
    h.Alloc(0, 500);  // all garbage
  }
  EXPECT_GE(h.stats().collections, 4u);
  EXPECT_LT(h.stats().live_objects, 100u);
}

TEST(ManagedHeap, GcTimeGrowsWithLiveSet) {
  // The §2.2.1 effect: tracing cost is linear in the live set. Compare the
  // per-cycle mark count for a small vs a large live graph.
  auto run = [](uint64_t n) {
    ManagedHeap h(NoAutoGc());
    const ObjRef root = h.Alloc(static_cast<uint32_t>(n), 8);
    h.AddRoot(root);
    for (uint64_t i = 0; i < n; ++i) {
      h.SetRef(root, static_cast<uint32_t>(i), h.Alloc(0, 64));
    }
    h.Collect();
    return h.stats().marked_total;
  };
  const uint64_t small = run(1000);
  const uint64_t large = run(50000);
  EXPECT_GE(large, small * 40);
}

TEST(ManagedHeap, HandleReuseAfterSweep) {
  ManagedHeap h(NoAutoGc());
  const ObjRef a = h.Alloc(0, 10);
  h.Collect();  // a is garbage
  const ObjRef b = h.Alloc(0, 10);
  EXPECT_EQ(a, b) << "handles are recycled";
}

TEST(ManagedHeap, PauseHistogramRecorded) {
  ManagedHeap h(NoAutoGc());
  h.Collect();
  h.Collect();
  EXPECT_EQ(h.pause_histogram().count(), 2u);
}

}  // namespace
}  // namespace jnvm::gcsim
