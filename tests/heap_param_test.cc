// Parameterized heap tests: the §4.1 invariants must hold for every block
// size, object size and recovery mode — property-style sweeps with TEST_P.
#include <gtest/gtest.h>

#include <set>

#include "src/heap/heap.h"

namespace jnvm::heap {
namespace {

// ---- Block-size sweep ---------------------------------------------------------

class BlockSizeTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    nvm::DeviceOptions o;
    o.size_bytes = 16 << 20;
    dev_ = std::make_unique<nvm::PmemDevice>(o);
    HeapOptions opts;
    opts.block_size = GetParam();
    heap_ = Heap::Format(dev_.get(), opts);
    id_ = heap_->InternClassId("param.X");
  }

  std::unique_ptr<nvm::PmemDevice> dev_;
  std::unique_ptr<Heap> heap_;
  uint16_t id_;
};

INSTANTIATE_TEST_SUITE_P(AllBlockSizes, BlockSizeTest,
                         ::testing::Values(64u, 128u, 256u, 512u, 1024u, 4096u),
                         [](const auto& info) {
                           return "bs" + std::to_string(info.param);
                         });

TEST_P(BlockSizeTest, LayoutConsistent) {
  EXPECT_EQ(heap_->block_size(), GetParam());
  EXPECT_EQ(heap_->payload_per_block(), GetParam() - 8);
  EXPECT_EQ(heap_->first_block() % GetParam(), 0u);
}

TEST_P(BlockSizeTest, ChainLengthMatchesPayload) {
  const uint32_t ppb = heap_->payload_per_block();
  for (const size_t payload : {size_t{1}, size_t{ppb}, size_t{ppb + 1},
                               size_t{10 * ppb}, size_t{10 * ppb + 7}}) {
    const Offset m = heap_->AllocObject(id_, payload);
    ASSERT_NE(m, 0u) << payload;
    EXPECT_EQ(heap_->ChainLength(m), (payload + ppb - 1) / ppb) << payload;
    heap_->FreeObject(m);
  }
}

TEST_P(BlockSizeTest, WriteReadAcrossChain) {
  const size_t bytes = 5 * heap_->payload_per_block() + 13;
  const Offset m = heap_->AllocObject(id_, bytes);
  ASSERT_NE(m, 0u);
  std::vector<Offset> blocks;
  heap_->CollectBlocks(m, &blocks);
  // Write a pattern into every payload byte through the device.
  uint8_t v = 1;
  for (const Offset b : blocks) {
    for (uint32_t i = 0; i < heap_->payload_per_block(); i += 64) {
      heap_->dev().Write<uint8_t>(heap_->PayloadOf(b) + i, v++);
    }
  }
  v = 1;
  for (const Offset b : blocks) {
    for (uint32_t i = 0; i < heap_->payload_per_block(); i += 64) {
      EXPECT_EQ(heap_->dev().Read<uint8_t>(heap_->PayloadOf(b) + i), v++);
    }
  }
}

TEST_P(BlockSizeTest, AllocFreeAllocStableFootprint) {
  const Offset bump_start = heap_->bump();
  std::vector<Offset> live;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      const Offset m = heap_->AllocObject(id_, 3 * heap_->payload_per_block());
      ASSERT_NE(m, 0u);
      live.push_back(m);
    }
    for (const Offset m : live) {
      heap_->FreeObject(m);
    }
    live.clear();
  }
  // The bump advanced only for the first round's footprint.
  EXPECT_EQ(heap_->bump() - bump_start, 100u * 3 * GetParam());
}

TEST_P(BlockSizeTest, BlockScanRecoveryPerSize) {
  const Offset valid_obj = heap_->AllocObject(id_, 600);
  heap_->AllocObject(id_, 600);  // invalid garbage
  heap_->SetValid(valid_obj);
  heap_->Psync();
  auto reopened = Heap::Open(dev_.get());
  const auto stats = reopened->RecoverBlockScan();
  const uint64_t chain = (600 + reopened->payload_per_block() - 1) /
                         reopened->payload_per_block();
  EXPECT_EQ(stats.live_blocks, chain);
  EXPECT_GE(stats.freed_blocks, chain);
}

// ---- Free-queue sharding property ----------------------------------------------

class FreeQueueCountTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Counts, FreeQueueCountTest,
                         ::testing::Values(1, 7, 64, 1000, 10000));

TEST_P(FreeQueueCountTest, PushPopConservesBlocks) {
  FreeQueue q;
  const int n = GetParam();
  std::set<Offset> pushed;
  for (int i = 1; i <= n; ++i) {
    q.Push(static_cast<Offset>(i) * 256);
    pushed.insert(static_cast<Offset>(i) * 256);
  }
  EXPECT_EQ(q.ApproxSize(), static_cast<size_t>(n));
  std::set<Offset> popped;
  for (int i = 0; i < n; ++i) {
    const Offset off = q.Pop();
    ASSERT_NE(off, 0u);
    EXPECT_TRUE(popped.insert(off).second) << "duplicate pop";
  }
  EXPECT_EQ(q.Pop(), 0u);
  EXPECT_EQ(popped, pushed);
}

// ---- Object-size sweep through recovery ------------------------------------------

class ObjectSizeRecoveryTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ObjectSizeRecoveryTest,
                         ::testing::Values(1u, 100u, 248u, 249u, 1000u, 10'000u,
                                           100'000u));

TEST_P(ObjectSizeRecoveryTest, ValidObjectSurvivesScanRecovery) {
  nvm::DeviceOptions o;
  o.size_bytes = 16 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  Offset m;
  const size_t payload = GetParam();
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    const uint16_t id = h->InternClassId("param.Y");
    m = h->AllocObject(id, payload);
    ASSERT_NE(m, 0u);
    // Stamp first and last payload byte.
    std::vector<Offset> blocks;
    h->CollectBlocks(m, &blocks);
    h->dev().Write<uint8_t>(h->PayloadOf(blocks.front()), 0xAB);
    const size_t ppb = h->payload_per_block();
    const size_t last_within = (payload - 1) % ppb;
    h->dev().Write<uint8_t>(h->PayloadOf(blocks.back()) + last_within, 0xCD);
    h->SetValid(m);
    h->Psync();
  }
  auto h = Heap::Open(dev.get());
  h->RecoverBlockScan();
  std::vector<Offset> blocks;
  h->CollectBlocks(m, &blocks);
  const size_t ppb = h->payload_per_block();
  // For a 1-byte payload the "first" and "last" byte coincide (0xCD wins).
  EXPECT_EQ(h->dev().Read<uint8_t>(h->PayloadOf(blocks.front())),
            payload == 1 ? 0xCD : 0xAB);
  EXPECT_EQ(h->dev().Read<uint8_t>(h->PayloadOf(blocks.back()) + (payload - 1) % ppb),
            0xCD);
}

}  // namespace
}  // namespace jnvm::heap
