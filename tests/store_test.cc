// Store tests: backend conformance across all seven backends (parameterized),
// cache behaviour, restart paths, and crash atomicity of the J-NVM backends.
#include <gtest/gtest.h>

#include <memory>

#include "src/store/fs_backend.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/kvstore.h"
#include "src/store/pcj_backend.h"
#include "src/store/volatile_backend.h"

namespace jnvm::store {
namespace {

enum class Kind { kJpdt, kJpfa, kFs, kTmpfs, kNullfs, kPcj, kVolatile };

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kJpdt: return "Jpdt";
    case Kind::kJpfa: return "Jpfa";
    case Kind::kFs: return "Fs";
    case Kind::kTmpfs: return "Tmpfs";
    case Kind::kNullfs: return "Nullfs";
    case Kind::kPcj: return "Pcj";
    case Kind::kVolatile: return "Volatile";
  }
  return "?";
}

struct StoreFixture {
  explicit StoreFixture(Kind kind, bool strict = false) {
    fs::FsOptions fast;
    fast.syscall_latency_ns = 0;
    switch (kind) {
      case Kind::kJpdt:
      case Kind::kJpfa: {
        nvm::DeviceOptions o;
        o.size_bytes = 32 << 20;
        o.strict = strict;
        dev = std::make_unique<nvm::PmemDevice>(o);
        rt = core::JnvmRuntime::Format(dev.get());
        if (kind == Kind::kJpdt) {
          backend = std::make_unique<JpdtBackend>(rt.get());
        } else {
          backend = std::make_unique<JpfaBackend>(rt.get());
        }
        break;
      }
      case Kind::kFs: {
        nvm::DeviceOptions o;
        o.size_bytes = 32 << 20;
        o.strict = strict;
        dev = std::make_unique<nvm::PmemDevice>(o);
        simfs = std::make_unique<fs::NvmFs>(dev.get(), 0, 32 << 20, fast);
        backend = std::make_unique<FsBackend>(simfs.get(), "FS");
        break;
      }
      case Kind::kTmpfs:
        simfs = std::make_unique<fs::TmpFs>(32 << 20, fast);
        backend = std::make_unique<FsBackend>(simfs.get(), "TmpFS");
        break;
      case Kind::kNullfs:
        simfs = std::make_unique<fs::NullFs>(32 << 20, fast);
        backend = std::make_unique<FsBackend>(simfs.get(), "NullFS");
        break;
      case Kind::kPcj: {
        nvm::DeviceOptions o;
        o.size_bytes = 32 << 20;
        o.strict = strict;
        dev = std::make_unique<nvm::PmemDevice>(o);
        pool = std::make_unique<pmdkx::PmdkPool>(dev.get(), 0, 32 << 20);
        PcjOptions popts;
        popts.jni_crossing_ns = 0;  // no artificial latency in tests
        popts.fields_per_record = 3;
        backend = std::make_unique<PcjBackend>(pool.get(), popts);
        break;
      }
      case Kind::kVolatile:
        gc = std::make_unique<gcsim::ManagedHeap>(gcsim::GcOptions{});
        backend = std::make_unique<VolatileBackend>(gc.get());
        break;
    }
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
  std::unique_ptr<gcsim::ManagedHeap> gc;
  std::unique_ptr<fs::SimFs> simfs;
  std::unique_ptr<pmdkx::PmdkPool> pool;
  std::unique_ptr<Backend> backend;
};

Record MakeRecord(int tag, uint32_t nfields = 3, uint32_t len = 16) {
  return SyntheticRecord(static_cast<uint64_t>(tag), 0, nfields, len);
}

// ---- Backend conformance (parameterized over every backend) -------------------

class BackendConformanceTest : public ::testing::TestWithParam<Kind> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::Values(Kind::kJpdt, Kind::kJpfa, Kind::kFs,
                                           Kind::kTmpfs, Kind::kNullfs, Kind::kPcj,
                                           Kind::kVolatile),
                         [](const auto& info) { return KindName(info.param); });

TEST_P(BackendConformanceTest, PutGetRoundTrip) {
  StoreFixture f(GetParam());
  const Record r = MakeRecord(1);
  f.backend->Put("key1", r);
  Record out;
  ASSERT_TRUE(f.backend->Get("key1", &out));
  EXPECT_EQ(out, r);
}

TEST_P(BackendConformanceTest, MissingKey) {
  StoreFixture f(GetParam());
  Record out;
  EXPECT_FALSE(f.backend->Get("missing", &out));
  EXPECT_FALSE(f.backend->UpdateField("missing", 0, "x"));
  EXPECT_FALSE(f.backend->Delete("missing"));
}

TEST_P(BackendConformanceTest, ReplaceValue) {
  StoreFixture f(GetParam());
  f.backend->Put("k", MakeRecord(1));
  f.backend->Put("k", MakeRecord(2));
  Record out;
  ASSERT_TRUE(f.backend->Get("k", &out));
  EXPECT_EQ(out, MakeRecord(2));
  EXPECT_EQ(f.backend->Size(), 1u);
}

TEST_P(BackendConformanceTest, UpdateFieldTargeted) {
  StoreFixture f(GetParam());
  const Record r = MakeRecord(1);
  f.backend->Put("k", r);
  const std::string nv(16, 'Z');
  ASSERT_TRUE(f.backend->UpdateField("k", 1, nv));
  Record out;
  ASSERT_TRUE(f.backend->Get("k", &out));
  EXPECT_EQ(out.fields[0], r.fields[0]);
  EXPECT_EQ(out.fields[1], nv);
  EXPECT_EQ(out.fields[2], r.fields[2]);
}

TEST_P(BackendConformanceTest, DeleteRemoves) {
  StoreFixture f(GetParam());
  f.backend->Put("k", MakeRecord(1));
  EXPECT_TRUE(f.backend->Delete("k"));
  Record out;
  EXPECT_FALSE(f.backend->Get("k", &out));
  EXPECT_EQ(f.backend->Size(), 0u);
}

TEST_P(BackendConformanceTest, ManyKeys) {
  StoreFixture f(GetParam());
  for (int i = 0; i < 200; ++i) {
    f.backend->Put("key" + std::to_string(i), MakeRecord(i));
  }
  EXPECT_EQ(f.backend->Size(), 200u);
  Record out;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.backend->Get("key" + std::to_string(i), &out)) << i;
    EXPECT_EQ(out, MakeRecord(i)) << i;
  }
}

// ---- J-NVM backends across restart ---------------------------------------------

TEST(JpdtBackendTest, SurvivesRestart) {
  nvm::DeviceOptions o;
  o.size_bytes = 32 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    JpdtBackend b(rt.get());
    for (int i = 0; i < 50; ++i) {
      b.Put("key" + std::to_string(i), MakeRecord(i));
    }
    b.Delete("key13");
  }
  auto rt = core::JnvmRuntime::Open(dev.get());
  JpdtBackend b(rt.get());
  EXPECT_EQ(b.Size(), 49u);
  Record out;
  ASSERT_TRUE(b.Get("key31", &out));
  EXPECT_EQ(out, MakeRecord(31));
  EXPECT_FALSE(b.Get("key13", &out));
}

TEST(JpfaBackendTest, SurvivesRestart) {
  nvm::DeviceOptions o;
  o.size_bytes = 32 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    JpfaBackend b(rt.get());
    for (int i = 0; i < 50; ++i) {
      b.Put("key" + std::to_string(i), MakeRecord(i));
    }
    b.Delete("key13");
  }
  auto rt = core::JnvmRuntime::Open(dev.get());
  JpfaBackend b(rt.get());
  EXPECT_EQ(b.Size(), 49u);
  Record out;
  ASSERT_TRUE(b.Get("key31", &out));
  EXPECT_EQ(out, MakeRecord(31));
  EXPECT_FALSE(b.Get("key13", &out));
}

// ---- Crash atomicity of the J-PFA backend ---------------------------------------

TEST(JpfaBackendCrashTest, PutIsAllOrNothing) {
  for (uint64_t crash_at = 20; crash_at < 800; crash_at += 61) {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = true;
    auto dev = std::make_unique<nvm::PmemDevice>(o);
    {
      auto rt = core::JnvmRuntime::Format(dev.get());
      JpfaBackend b(rt.get());
      b.Put("stable", MakeRecord(7));
      rt->Psync();
      dev->ScheduleCrashAfter(crash_at);
      try {
        for (int i = 0; i < 20; ++i) {
          b.Put("k" + std::to_string(i), MakeRecord(i));
        }
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
    dev->Crash(crash_at);
    auto rt = core::JnvmRuntime::Open(dev.get());
    JpfaBackend b(rt.get());
    Record out;
    ASSERT_TRUE(b.Get("stable", &out)) << crash_at;
    EXPECT_EQ(out, MakeRecord(7)) << crash_at;
    // Any key that survived must carry a complete record.
    for (int i = 0; i < 20; ++i) {
      if (b.Get("k" + std::to_string(i), &out)) {
        EXPECT_EQ(out, MakeRecord(i)) << "torn record, crash_at=" << crash_at;
      }
    }
  }
}

TEST(JpfaBackendCrashTest, FieldUpdateAtomicInBlock) {
  // J-PFA updates run inside failure-atomic blocks: a field update is
  // all-or-nothing even though it writes in place.
  for (uint64_t crash_at = 5; crash_at < 300; crash_at += 23) {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = true;
    auto dev = std::make_unique<nvm::PmemDevice>(o);
    const Record original = MakeRecord(1);
    {
      auto rt = core::JnvmRuntime::Format(dev.get());
      JpfaBackend b(rt.get());
      b.Put("k", original);
      rt->Psync();
      dev->ScheduleCrashAfter(crash_at);
      try {
        b.UpdateField("k", 1, std::string(16, 'Z'));
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
    dev->Crash(crash_at * 13 + 1);
    auto rt = core::JnvmRuntime::Open(dev.get());
    JpfaBackend b(rt.get());
    Record out;
    ASSERT_TRUE(b.Get("k", &out)) << crash_at;
    const bool old_value = out.fields[1] == original.fields[1];
    const bool new_value = out.fields[1] == std::string(16, 'Z');
    EXPECT_TRUE(old_value || new_value) << "torn field update, crash_at=" << crash_at;
    EXPECT_EQ(out.fields[0], original.fields[0]);
    EXPECT_EQ(out.fields[2], original.fields[2]);
  }
}

// ---- KvStore cache ---------------------------------------------------------------

struct KvFixture {
  KvFixture(double ratio, uint64_t expected) {
    gc = std::make_unique<gcsim::ManagedHeap>(gcsim::GcOptions{});
    fs::FsOptions fast;
    fast.syscall_latency_ns = 0;
    simfs = std::make_unique<fs::TmpFs>(32 << 20, fast);
    backend = std::make_unique<FsBackend>(simfs.get(), "FS");
    StoreOptions opts;
    opts.cache_ratio = ratio;
    opts.expected_records = expected;
    kv = std::make_unique<KvStore>(backend.get(), gc.get(), opts);
  }
  std::unique_ptr<gcsim::ManagedHeap> gc;
  std::unique_ptr<fs::TmpFs> simfs;
  std::unique_ptr<FsBackend> backend;
  std::unique_ptr<KvStore> kv;
};

TEST(KvStoreTest, ReadThroughAndHit) {
  KvFixture f(1.0, 100);
  f.kv->Insert("k", MakeRecord(1));
  Record out;
  ASSERT_TRUE(f.kv->Read("k", &out));  // hit: inserted into cache on Insert
  ASSERT_TRUE(f.kv->Read("k", &out));
  const CacheStats s = f.kv->cache_stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(KvStoreTest, MissPopulatesCache) {
  KvFixture f(1.0, 100);
  f.backend->Put("cold", MakeRecord(3));  // behind the store's back
  Record out;
  ASSERT_TRUE(f.kv->Read("cold", &out));
  EXPECT_EQ(f.kv->cache_stats().misses, 1u);
  ASSERT_TRUE(f.kv->Read("cold", &out));
  EXPECT_EQ(f.kv->cache_stats().hits, 1u);
}

TEST(KvStoreTest, EvictionRespectsCapacity) {
  KvFixture f(0.1, 100);  // capacity 10
  for (int i = 0; i < 50; ++i) {
    f.kv->Insert("k" + std::to_string(i), MakeRecord(i));
  }
  const CacheStats s = f.kv->cache_stats();
  EXPECT_LE(s.entries, 10u);
  EXPECT_GE(s.evictions, 40u);
}

TEST(KvStoreTest, WriteThroughUpdatesBackend) {
  KvFixture f(1.0, 100);
  f.kv->Insert("k", MakeRecord(1));
  f.kv->Update("k", 0, std::string(16, 'Q'));
  // Backend has the new value even though the cache could have served it.
  Record out;
  ASSERT_TRUE(f.backend->Get("k", &out));
  EXPECT_EQ(out.fields[0], std::string(16, 'Q'));
}

TEST(KvStoreTest, CacheDisabledWithZeroRatio) {
  KvFixture f(0.0, 100);
  f.kv->Insert("k", MakeRecord(1));
  Record out;
  ASSERT_TRUE(f.kv->Read("k", &out));
  const CacheStats s = f.kv->cache_stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
}

TEST(KvStoreTest, WarmCacheLoadsFromBackend) {
  KvFixture f(0.5, 20);  // capacity 10
  for (int i = 0; i < 20; ++i) {
    f.backend->Put("k" + std::to_string(i), MakeRecord(i));
  }
  const size_t loaded = f.kv->WarmCache(f.backend->Keys());
  EXPECT_EQ(loaded, 10u);
}

TEST(KvStoreTest, RmwReadsThenWrites) {
  KvFixture f(1.0, 100);
  f.kv->Insert("k", MakeRecord(1));
  ASSERT_TRUE(f.kv->ReadModifyWrite("k", 2, std::string(16, 'M')));
  Record out;
  ASSERT_TRUE(f.kv->Read("k", &out));
  EXPECT_EQ(out.fields[2], std::string(16, 'M'));
}

TEST(KvStoreTest, DeleteErasesEverywhere) {
  KvFixture f(1.0, 100);
  f.kv->Insert("k", MakeRecord(1));
  EXPECT_TRUE(f.kv->Delete("k"));
  Record out;
  EXPECT_FALSE(f.kv->Read("k", &out));
  EXPECT_FALSE(f.backend->Get("k", &out));
}

// ---- PRecord ----------------------------------------------------------------------

TEST(PRecordTest, FieldRoundTrip) {
  nvm::DeviceOptions o;
  o.size_bytes = 16 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  auto rt = core::JnvmRuntime::Format(dev.get());
  const Record r = MakeRecord(5, 10, 100);
  PRecord pr(*rt, r);
  EXPECT_EQ(pr.NumFields(), 10u);
  EXPECT_EQ(pr.ToRecord(), r);
  pr.SetField(4, std::string(100, 'x'));
  EXPECT_EQ(pr.GetField(4), std::string(100, 'x'));
  EXPECT_EQ(pr.GetField(3), r.fields[3]);
}

TEST(PRecordTest, LargeFieldsSpanBlocks) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  auto rt = core::JnvmRuntime::Format(dev.get());
  const Record r = MakeRecord(2, 4, 10'000);
  PRecord pr(*rt, r);
  EXPECT_EQ(pr.ToRecord(), r);
}

}  // namespace
}  // namespace jnvm::store
