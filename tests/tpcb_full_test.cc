// Tests for the full TPC-B schema: the four-way transaction (account,
// teller, branch, history) is one failure-atomic block; the balance-sum
// invariant across the three tables must hold after restarts and at every
// crash point.
#include <gtest/gtest.h>

#include "src/core/integrity.h"
#include "src/tpcb/bank.h"

namespace jnvm::tpcb {
namespace {

struct Fixture {
  explicit Fixture(bool strict = false) {
    nvm::DeviceOptions o;
    o.size_bytes = 128 << 20;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = core::JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
};

TEST(TpcbFullTest, TransactionUpdatesAllFourTables) {
  Fixture f;
  TpcbFullBank bank(f.rt.get());
  bank.Create(2);
  EXPECT_EQ(bank.NumBranches(), 2);
  bank.Transaction(/*account=*/1500, /*teller=*/12, /*delta=*/100);
  EXPECT_EQ(bank.AccountBalance(1500), 100);
  EXPECT_EQ(bank.TellerBalance(12), 100);
  EXPECT_EQ(bank.BranchBalance(1), 100);  // account 1500 -> branch 1
  EXPECT_EQ(bank.HistorySize(), 1u);
  EXPECT_TRUE(bank.CheckConsistent());
}

TEST(TpcbFullTest, ManyTransactionsStayConsistent) {
  Fixture f;
  TpcbFullBank bank(f.rt.get());
  bank.Create(2);
  Xorshift rng(5);
  for (int i = 0; i < 500; ++i) {
    bank.Transaction(static_cast<int64_t>(rng.NextBelow(2000)),
                     static_cast<int64_t>(rng.NextBelow(20)),
                     static_cast<int64_t>(rng.NextBelow(1000)) - 500);
  }
  std::string why;
  EXPECT_TRUE(bank.CheckConsistent(&why)) << why;
  EXPECT_EQ(bank.HistorySize(), 500u);
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(TpcbFullTest, SurvivesRestart) {
  Fixture f;
  {
    TpcbFullBank bank(f.rt.get());
    bank.Create(1);
    bank.Transaction(3, 2, 77);
    bank.Transaction(4, 2, -30);
  }
  f.rt.reset();
  f.rt = core::JnvmRuntime::Open(f.dev.get());
  TpcbFullBank bank(f.rt.get());
  EXPECT_EQ(bank.AccountBalance(3), 77);
  EXPECT_EQ(bank.AccountBalance(4), -30);
  EXPECT_EQ(bank.TellerBalance(2), 47);
  EXPECT_EQ(bank.BranchBalance(0), 47);
  EXPECT_EQ(bank.HistorySize(), 2u);
  std::string why;
  EXPECT_TRUE(bank.CheckConsistent(&why)) << why;
}

TEST(TpcbFullCrashTest, FourWayAtomicityAcrossCrashSweep) {
  for (uint64_t crash_at = 50; crash_at < 2200; crash_at += 173) {
    Fixture f(/*strict=*/true);
    {
      TpcbFullBank bank(f.rt.get());
      bank.Create(1);
      f.rt->Psync();
      f.dev->ScheduleCrashAfter(crash_at);
      Xorshift rng(crash_at);
      try {
        for (int i = 0; i < 40; ++i) {
          bank.Transaction(static_cast<int64_t>(rng.NextBelow(1000)),
                           static_cast<int64_t>(rng.NextBelow(10)),
                           static_cast<int64_t>(rng.NextBelow(200)) - 100);
        }
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      f.rt->Abandon();
    }
    f.rt.reset();
    f.dev->Crash(crash_at * 2654435761u);
    f.rt = core::JnvmRuntime::Open(f.dev.get());
    TpcbFullBank bank(f.rt.get());
    std::string why;
    EXPECT_TRUE(bank.CheckConsistent(&why))
        << "crash_at " << crash_at << ": " << why
        << " (a torn transaction leaked through the failure-atomic block)";
    EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok()) << "crash_at " << crash_at;
    // Service continues after recovery.
    bank.Transaction(1, 1, 10);
    EXPECT_TRUE(bank.CheckConsistent(&why)) << why;
  }
}

}  // namespace
}  // namespace jnvm::tpcb
