// Property tests built on the heap integrity auditor: after arbitrary op
// sequences — with or without crashes — every §2.4/§4.1 invariant holds.
#include <gtest/gtest.h>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"

namespace jnvm::core {
namespace {

struct Fixture {
  explicit Fixture(bool strict = false) {
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }

  void CrashAndReopen(uint64_t seed, bool graph = true) {
    rt->Abandon();
    rt.reset();
    dev->Crash(seed);
    RuntimeOptions opts;
    opts.graph_recovery = graph;
    rt = JnvmRuntime::Open(dev.get(), opts);
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

void RandomMapWorkload(Fixture& f, pdt::PStringHashMap& m, uint64_t seed, int ops) {
  Xorshift rng(seed);
  for (int i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBelow(40));
    switch (rng.NextBelow(4)) {
      case 0:
        m.Remove(key);
        break;
      case 1:
        m.Get(key);
        break;
      default: {
        pdt::PString v(*f.rt, "value-" + std::to_string(i) +
                                  std::string(rng.NextBelow(400), 'x'));
        m.Put(key, &v);
      }
    }
  }
}

TEST(IntegrityTest, FreshHeapIsClean) {
  Fixture f;
  const auto report = VerifyHeapIntegrity(*f.rt);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.objects, 2u);  // root map + its array
}

TEST(IntegrityTest, AfterRandomMapWorkload) {
  Fixture f;
  pdt::PStringHashMap m(*f.rt, 8);
  m.Pwb();
  m.Validate();
  f.rt->root().Put("m", &m);
  RandomMapWorkload(f, m, 42, 3000);
  const auto report = VerifyHeapIntegrity(*f.rt);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(IntegrityTest, AfterCleanRestart) {
  Fixture f;
  {
    pdt::PStringHashMap m(*f.rt, 8);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    RandomMapWorkload(f, m, 7, 2000);
  }
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  const auto report = VerifyHeapIntegrity(*f.rt);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The central crash property: whatever the crash point and eviction
// pattern, recovery restores every invariant.
class IntegrityCrashTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, IntegrityCrashTest,
    ::testing::Combine(::testing::Values(20u, 100u, 400u, 1200u, 3000u, 7000u),
                       ::testing::Bool()),  // graph vs block-scan recovery
    [](const auto& info) {
      return "at" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_graph" : "_nogc");
    });

TEST_P(IntegrityCrashTest, InvariantsHoldAfterRecovery) {
  const auto [crash_at, graph] = GetParam();
  Fixture f(/*strict=*/true);
  {
    pdt::PStringHashMap m(*f.rt, 8);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    f.rt->Psync();
    f.dev->ScheduleCrashAfter(crash_at);
    try {
      // FA-wrapped ops so the nogc precondition holds (§5.3.3): every
      // allocation publishes in the same failure-atomic block.
      Xorshift rng(crash_at);
      for (int i = 0; i < 300; ++i) {
        const std::string key = "k" + std::to_string(rng.NextBelow(20));
        f.rt->FaStart();
        pdt::PString v(*f.rt, "v" + std::to_string(i));
        m.Put(key, &v);
        f.rt->FaEnd();
      }
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
  }
  f.CrashAndReopen(crash_at * 2654435761u, graph);
  const auto report = VerifyHeapIntegrity(*f.rt);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // The heap stays fully usable.
  const auto m = f.rt->root().GetAs<pdt::PStringHashMap>("m");
  ASSERT_NE(m, nullptr);
  pdt::PString fresh(*f.rt, "fresh");
  m->Put("post", &fresh);
  EXPECT_EQ(m->GetAs<pdt::PString>("post")->Str(), "fresh");
  EXPECT_TRUE(VerifyHeapIntegrity(*f.rt).ok());
}

// Eviction-seed sweep at a fixed crash point.
class IntegrityEvictionTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityEvictionTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST_P(IntegrityEvictionTest, AnyEvictionPatternRecovers) {
  Fixture f(/*strict=*/true);
  {
    pdt::PStringHashMap m(*f.rt, 4);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    f.rt->Psync();
    f.dev->ScheduleCrashAfter(700);
    try {
      RandomMapWorkload(f, m, 5, 200);
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
  }
  f.CrashAndReopen(GetParam());
  const auto report = VerifyHeapIntegrity(*f.rt);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Double-crash: crash during recovery-adjacent activity, recover again.
TEST(IntegrityTest, CrashRecoverCrashRecover) {
  Fixture f(/*strict=*/true);
  {
    pdt::PStringHashMap m(*f.rt, 8);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    f.rt->Psync();
    f.dev->ScheduleCrashAfter(900);
    try {
      RandomMapWorkload(f, m, 11, 500);
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
  }
  f.CrashAndReopen(1);
  {
    const auto m = f.rt->root().GetAs<pdt::PStringHashMap>("m");
    f.dev->ScheduleCrashAfter(500);
    try {
      RandomMapWorkload(f, *m, 13, 500);
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
  }
  f.CrashAndReopen(2);
  EXPECT_TRUE(VerifyHeapIntegrity(*f.rt).ok());
}

}  // namespace
}  // namespace jnvm::core
