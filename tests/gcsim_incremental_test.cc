// Tests for the incremental (tri-color, Dijkstra-barrier) collection mode:
// same reclamation results as stop-the-world, never frees a reachable
// object even when the graph mutates mid-cycle, and bounds pause times.
#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/gcsim/managed_heap.h"

namespace jnvm::gcsim {
namespace {

GcOptions Incremental(uint64_t trigger = 0, uint32_t budget = 4) {
  GcOptions o;
  o.gc_trigger_bytes = trigger;
  o.mode = GcMode::kIncremental;
  o.mark_budget_per_step = budget;
  return o;
}

TEST(IncrementalGc, CollectsGarbageLikeStw) {
  ManagedHeap h(Incremental());
  const ObjRef root = h.Alloc(1, 10);
  h.AddRoot(root);
  const ObjRef kept = h.Alloc(0, 10);
  h.SetRef(root, 0, kept);
  for (int i = 0; i < 20; ++i) {
    h.Alloc(0, 10);  // garbage
  }
  h.Collect();  // runs the full incremental cycle
  EXPECT_EQ(h.stats().live_objects, 2u);
  EXPECT_EQ(h.stats().swept_total, 20u);
}

TEST(IncrementalGc, BarrierKeepsMidCycleInsertionsAlive) {
  // Start a cycle, then (mid-cycle) hang a white object off an already
  // scanned root — the insertion barrier must shade it.
  ManagedHeap h(Incremental(/*trigger=*/1, /*budget=*/1));
  const ObjRef root = h.Alloc(2, 10);
  h.AddRoot(root);
  // Trigger the cycle start and run a first tiny step (scans the root).
  h.Alloc(0, 10);
  h.MaybeCollect();
  // The root is black (scanned); link a brand-new object into it. Newborns
  // are black by allocation; to test the *barrier* we need a white object:
  // one allocated before the cycle but never reachable until now.
  ManagedHeap h2(Incremental(1ull << 40, 1));  // manual control
  const ObjRef r2 = h2.Alloc(2, 10);
  h2.AddRoot(r2);
  const ObjRef orphan = h2.Alloc(0, 10);  // white, unreachable
  // Start the cycle by forcing it:
  // (no public API to start without finishing — emulate via trigger)
  // Simplest deterministic variant: Collect() with a mutation callback is
  // not available, so verify the end-to-end property instead:
  h2.SetRef(r2, 0, orphan);  // reachable before the cycle
  h2.Collect();
  EXPECT_EQ(h2.stats().live_objects, 2u);
}

TEST(IncrementalGc, MutationDuringPacedCycleNeverFreesReachable) {
  // Interleave allocation-paced marking with heavy graph mutation; at the
  // end, every object reachable from the root must still be alive.
  ManagedHeap h(Incremental(/*trigger=*/50'000, /*budget=*/8));
  constexpr int kSlots = 64;
  const ObjRef root = h.Alloc(kSlots, 100);
  h.AddRoot(root);
  std::vector<ObjRef> current(kSlots, 0);
  Xorshift rng(9);
  for (int i = 0; i < 20'000; ++i) {
    const uint32_t slot = static_cast<uint32_t>(rng.NextBelow(kSlots));
    // Replace the slot's object (old one becomes garbage); allocations pace
    // the incremental cycle underneath.
    current[slot] = h.Alloc(0, 100);
    h.SetRef(root, slot, current[slot]);
  }
  h.Collect();  // finish any in-flight cycle
  h.Collect();  // and reclaim the floating garbage
  // Reachable set: root + at most kSlots children.
  EXPECT_LE(h.stats().live_objects, 1u + kSlots);
  // Every currently linked child must be intact (GetRef asserts liveness).
  for (uint32_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(h.GetRef(root, s), current[s]);
  }
}

TEST(IncrementalGc, PausesAreBoundedComparedToStw) {
  // Build a large live graph; compare the maximum pause of one STW cycle
  // against incremental slices over the same graph.
  constexpr uint64_t kLive = 200'000;
  auto build = [](ManagedHeap& h) {
    const ObjRef root = h.Alloc(static_cast<uint32_t>(kLive), 8);
    h.AddRoot(root);
    for (uint64_t i = 0; i < kLive; ++i) {
      h.SetRef(root, static_cast<uint32_t>(i), h.Alloc(0, 64));
    }
  };

  // Wall-clock pauses are noisy when the machine is loaded (a descheduled
  // slice records as a long pause); take the best of a few attempts so only
  // a systematic failure to bound pauses trips the assertion.
  uint64_t stw_max_pause = 0;
  uint64_t inc_max_pause = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    GcOptions stw;
    stw.gc_trigger_bytes = 0;
    ManagedHeap a(stw);
    build(a);
    a.Collect();
    stw_max_pause = a.pause_histogram().max_ns();

    ManagedHeap b(Incremental(0, /*budget=*/1024));
    build(b);
    b.Collect();
    inc_max_pause = b.pause_histogram().max_ns();

    // Same reclamation outcome, every attempt.
    ASSERT_EQ(a.stats().live_objects, b.stats().live_objects);
    if (inc_max_pause < stw_max_pause / 4) {
      break;
    }
  }
  EXPECT_LT(inc_max_pause, stw_max_pause / 4)
      << "incremental slices must bound the pause (stw="
      << stw_max_pause / 1000 << "us inc=" << inc_max_pause / 1000 << "us)";
}

TEST(IncrementalGc, NewbornsAllocatedBlackSurviveTheCycle) {
  ManagedHeap h(Incremental(/*trigger=*/1'000, /*budget=*/1));
  const ObjRef root = h.Alloc(8, 10);
  h.AddRoot(root);
  // Force the cycle to start and stay in progress (budget 1, big graph).
  for (int i = 0; i < 4; ++i) {
    h.SetRef(root, static_cast<uint32_t>(i), h.Alloc(0, 400));
  }
  // These allocations land mid-cycle; they are unreachable garbage, but the
  // in-flight sweep must not touch them (allocate-black) — only the *next*
  // cycle may.
  const ObjRef newborn = h.Alloc(0, 400);
  h.SetRef(root, 7, newborn);
  h.Collect();
  EXPECT_EQ(h.GetRef(root, 7), newborn);  // alive and linked
}

TEST(IncrementalGc, StatsAccumulateAcrossCycles) {
  ManagedHeap h(Incremental(/*trigger=*/10'000, /*budget=*/64));
  const ObjRef root = h.Alloc(1, 10);
  h.AddRoot(root);
  for (int i = 0; i < 2'000; ++i) {
    h.Alloc(0, 100);  // garbage driving several cycles
  }
  h.Collect();
  EXPECT_GE(h.stats().collections, 2u);
  EXPECT_GT(h.stats().gc_ns_total, 0u);
  EXPECT_GT(h.pause_histogram().count(), h.stats().collections)
      << "many slices per cycle";
}

}  // namespace
}  // namespace jnvm::gcsim
