// Device-image tests: save/load round trip (the DAX-file equivalent) and
// cross-process-style reopen with recovery.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"

namespace jnvm {
namespace {

TEST(DeviceImage, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jnvm_img_roundtrip.bin";
  {
    nvm::DeviceOptions o;
    o.size_bytes = 8 << 20;
    nvm::PmemDevice dev(o);
    auto rt = core::JnvmRuntime::Format(&dev);
    pdt::PString s(*rt, "saved to disk");
    rt->root().Put("s", &s);
    rt->Close();
    rt->Abandon();  // Close() already ran; suppress the dtor's second close
    ASSERT_TRUE(dev.SaveTo(path));
  }
  auto dev = nvm::PmemDevice::LoadFrom(path);
  ASSERT_NE(dev, nullptr);
  auto rt = core::JnvmRuntime::Open(dev.get());
  const auto s = rt->root().GetAs<pdt::PString>("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Str(), "saved to disk");
  EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
  std::remove(path.c_str());
}

TEST(DeviceImage, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/jnvm_img_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not an image", f);
  std::fclose(f);
  EXPECT_EQ(nvm::PmemDevice::LoadFrom(path), nullptr);
  EXPECT_EQ(nvm::PmemDevice::LoadFrom(path + ".missing"), nullptr);
  std::remove(path.c_str());
}

TEST(DeviceImage, DirtyImageRunsRecoveryOnLoad) {
  const std::string path = ::testing::TempDir() + "/jnvm_img_dirty.bin";
  {
    nvm::DeviceOptions o;
    o.size_bytes = 8 << 20;
    nvm::PmemDevice dev(o);
    auto rt = core::JnvmRuntime::Format(&dev);
    pdt::PString kept(*rt, "kept");
    kept.Pwb();
    kept.Validate();
    rt->root().Put("kept", &kept);
    pdt::PString leaked(*rt, "leaked");  // unreachable garbage
    rt->Psync();
    rt->Abandon();  // "kill -9": no clean shutdown flag
    ASSERT_TRUE(dev.SaveTo(path));
  }
  auto dev = nvm::PmemDevice::LoadFrom(path);
  ASSERT_NE(dev, nullptr);
  auto rt = core::JnvmRuntime::Open(dev.get());
  EXPECT_FALSE(rt->heap().was_clean_shutdown());
  EXPECT_GE(rt->recovery_report().sweep.freed_blocks, 1u);
  EXPECT_EQ(rt->root().GetAs<pdt::PString>("kept")->Str(), "kept");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jnvm
