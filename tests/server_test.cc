// Tests for the network service layer (src/server): RESP parser edge cases,
// shard routing determinism, group-commit shard semantics, and an
// end-to-end loopback test with a shutdown → restart → recovery cycle.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/clock.h"
#include "src/server/client.h"
#include "src/server/poller.h"
#include "src/server/server.h"
#include "src/server/shard.h"

namespace jnvm::server {
namespace {

// ---- I/O-plane parameterization ---------------------------------------------
// The e2e suites run under every loops × poller combination: the single-loop
// shapes that existed before the multi-core I/O plane, plus 2- and 4-loop
// pools where connections land on different loops and completions cross
// threads. io_uring joins the grid only when the kernel actually supports it
// (Poller::Create falls back to epoll otherwise, which would make the
// poller= stats assertion lie).

struct IoParam {
  uint32_t loops;
  std::string poller;
};

std::vector<IoParam> IoParams() {
  std::vector<std::string> pollers = {"epoll", "poll"};
  if (IoUringSupported()) {
    pollers.push_back("uring");
  }
  std::vector<IoParam> out;
  for (uint32_t loops : {1u, 2u, 4u}) {
    for (const std::string& p : pollers) {
      out.push_back({loops, p});
    }
  }
  return out;
}

std::string IoParamName(const ::testing::TestParamInfo<IoParam>& info) {
  return "loops" + std::to_string(info.param.loops) + "_" + info.param.poller;
}

// ---- RESP command parser ----------------------------------------------------

std::string Frame(const std::vector<std::string>& args) {
  std::string out = "*" + std::to_string(args.size()) + "\r\n";
  for (const auto& a : args) {
    out += "$" + std::to_string(a.size()) + "\r\n" + a + "\r\n";
  }
  return out;
}

TEST(RespParser, ParsesWholeCommand) {
  RespParser p;
  const std::string wire = Frame({"SET", "k", "v"});
  p.Feed(wire.data(), wire.size());
  std::vector<std::string> args;
  std::string err;
  ASSERT_EQ(p.Next(&args, &err), RespParser::Status::kCommand);
  EXPECT_EQ(args, (std::vector<std::string>{"SET", "k", "v"}));
  EXPECT_EQ(p.Next(&args, &err), RespParser::Status::kNeedMore);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(RespParser, SplitReadsByteByByte) {
  // A command split across N one-byte reads must parse identically and
  // never re-scan (state survives Feed boundaries).
  RespParser p;
  const std::string wire = Frame({"HSET", "key:1", "3", "value bytes"});
  std::vector<std::string> args;
  std::string err;
  for (size_t i = 0; i < wire.size(); ++i) {
    const RespParser::Status st = p.Next(&args, &err);
    ASSERT_EQ(st, RespParser::Status::kNeedMore) << "at byte " << i;
    p.Feed(&wire[i], 1);
  }
  ASSERT_EQ(p.Next(&args, &err), RespParser::Status::kCommand);
  EXPECT_EQ(args, (std::vector<std::string>{"HSET", "key:1", "3", "value bytes"}));
}

TEST(RespParser, PipelinedCommandsDrainInOrder) {
  RespParser p;
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    wire += Frame({"GET", "key:" + std::to_string(i)});
  }
  // Feed in two arbitrary chunks.
  p.Feed(wire.data(), wire.size() / 3);
  std::vector<std::string> args;
  std::string err;
  int got = 0;
  while (p.Next(&args, &err) == RespParser::Status::kCommand) {
    EXPECT_EQ(args[1], "key:" + std::to_string(got));
    ++got;
  }
  p.Feed(wire.data() + wire.size() / 3, wire.size() - wire.size() / 3);
  while (p.Next(&args, &err) == RespParser::Status::kCommand) {
    EXPECT_EQ(args[1], "key:" + std::to_string(got));
    ++got;
  }
  EXPECT_EQ(got, 10);
}

TEST(RespParser, BinaryValuesSurvive) {
  RespParser p;
  std::string blob;
  for (int i = 0; i < 256; ++i) {
    blob.push_back(static_cast<char>(i));  // includes \r, \n, \0
  }
  const std::string wire = Frame({"SET", "bin", blob});
  p.Feed(wire.data(), wire.size());
  std::vector<std::string> args;
  std::string err;
  ASSERT_EQ(p.Next(&args, &err), RespParser::Status::kCommand);
  EXPECT_EQ(args[2], blob);
}

TEST(RespParser, MalformedFramesAreTerminalErrors) {
  const std::vector<std::string> bad = {
      "GET k\r\n",          // inline command, not RESP array
      "*0\r\n",             // empty array
      "*2\r\nGET\r\n",      // missing bulk header
      "*1\r\n$-1\r\n",      // negative bulk length in a request
      "*1\r\n$3\r\nabcd\r\n",  // body longer than declared
      "*1\r\n$04\r\nabc\r\n",  // leading zero length
  };
  for (const std::string& wire : bad) {
    RespParser p;
    p.Feed(wire.data(), wire.size());
    std::vector<std::string> args;
    std::string err;
    RespParser::Status st = p.Next(&args, &err);
    // Some inputs need more bytes before the violation is visible; push junk.
    if (st == RespParser::Status::kNeedMore) {
      const std::string junk(8, 'x');
      p.Feed(junk.data(), junk.size());
      st = p.Next(&args, &err);
    }
    ASSERT_EQ(st, RespParser::Status::kError) << wire;
    EXPECT_FALSE(err.empty());
    // Terminal: stays broken.
    EXPECT_EQ(p.Next(&args, &err), RespParser::Status::kError);
  }
}

TEST(RespParser, OversizedFrameRejected) {
  RespParser p;
  const std::string wire = "*1\r\n$999999999\r\n";  // > kMaxBulkBytes
  p.Feed(wire.data(), wire.size());
  std::vector<std::string> args;
  std::string err;
  EXPECT_EQ(p.Next(&args, &err), RespParser::Status::kError);

  RespParser p2;
  const std::string wide = "*99999\r\n";  // > kMaxArgs
  p2.Feed(wide.data(), wide.size());
  EXPECT_EQ(p2.Next(&args, &err), RespParser::Status::kError);
}

TEST(RespReplyParser, AllReplyTypes) {
  RespReplyParser p;
  const std::string wire = "+OK\r\n-ERR boom\r\n:42\r\n$5\r\nhello\r\n$-1\r\n";
  p.Feed(wire.data(), wire.size());
  RespReply r;
  std::string err;
  ASSERT_EQ(p.Next(&r, &err), RespParser::Status::kCommand);
  EXPECT_EQ(r.type, RespReply::Type::kSimple);
  EXPECT_EQ(r.str, "OK");
  ASSERT_EQ(p.Next(&r, &err), RespParser::Status::kCommand);
  EXPECT_EQ(r.type, RespReply::Type::kError);
  ASSERT_EQ(p.Next(&r, &err), RespParser::Status::kCommand);
  EXPECT_EQ(r.integer, 42);
  ASSERT_EQ(p.Next(&r, &err), RespParser::Status::kCommand);
  EXPECT_EQ(r.str, "hello");
  ASSERT_EQ(p.Next(&r, &err), RespParser::Status::kCommand);
  EXPECT_EQ(r.type, RespReply::Type::kNil);
  EXPECT_EQ(p.Next(&r, &err), RespParser::Status::kNeedMore);
}

// ---- Shard routing ----------------------------------------------------------

TEST(ShardRouting, DeterministicAndInRange) {
  for (uint32_t nshards : {1u, 2u, 4u, 7u, 16u}) {
    for (int i = 0; i < 1000; ++i) {
      const std::string key = "key:" + std::to_string(i);
      const uint32_t a = ShardFor(key, nshards);
      EXPECT_LT(a, nshards);
      EXPECT_EQ(a, ShardFor(key, nshards));  // stable
    }
  }
}

TEST(ShardRouting, SpreadsKeys) {
  // FNV-1a over "key:N" must not collapse onto few shards.
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[ShardFor("key:" + std::to_string(i), 8)]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, 500);  // perfectly uniform would be 1000
  }
}

// ---- Shard group commit -----------------------------------------------------

class CollectSink : public CompletionSink {
 public:
  void OnCompletion(Completion&& c) override {
    std::lock_guard<std::mutex> lk(mu_);
    got_.push_back(std::move(c));
  }
  size_t count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return got_.size();
  }
  std::vector<Completion> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(got_);
  }

 private:
  mutable std::mutex mu_;
  std::vector<Completion> got_;
};

ShardOptions SmallShard(uint32_t batch) {
  ShardOptions o;
  o.device_bytes = 32ull << 20;
  o.map_capacity = 1 << 10;
  o.batch = batch;
  return o;
}

TEST(Shard, BatchedWritesElideFencesAndAudit) {
  CollectSink sink;
  auto shard = Shard::Open(SmallShard(/*batch=*/16), 0, &sink);
  for (int i = 0; i < 200; ++i) {
    Request r;
    r.op = Request::Op::kSet;
    r.key = "k" + std::to_string(i);
    r.value = "v" + std::to_string(i);
    r.conn_id = 1;  // conn_id 0 marks internal requests: no completion
    r.seq = static_cast<uint64_t>(i);
    ASSERT_TRUE(shard->Submit(std::move(r)));
  }
  const ShardReport rep = shard->Quiesce();
  EXPECT_TRUE(rep.integrity_ok) << rep.violations.size() << " violations";
  EXPECT_EQ(rep.records, 200u);
  // Group commit elided per-op durability fences (one per put).
  EXPECT_GT(rep.elided_fences, 0u);
  EXPECT_EQ(sink.count(), 200u);
}

TEST(Shard, Batch1KeepsWriteThroughSemantics) {
  CollectSink sink;
  auto shard = Shard::Open(SmallShard(/*batch=*/1), 0, &sink);
  for (int i = 0; i < 50; ++i) {
    Request r;
    r.op = Request::Op::kSet;
    r.key = "k" + std::to_string(i);
    r.value = "v";
    ASSERT_TRUE(shard->Submit(std::move(r)));
  }
  const ShardReport rep = shard->Quiesce();
  EXPECT_TRUE(rep.integrity_ok);
  EXPECT_EQ(rep.elided_fences, 0u);  // no group commit at batch=1
  EXPECT_FALSE(shard->Submit(Request{}));  // terminal after quiesce
}

// ---- Chunked output queue ---------------------------------------------------

TEST(ConnOutQueue, SmallAppendsCoalesceIntoTailChunk) {
  Conn c;
  c.AppendOut("+OK\r\n");
  c.AppendOut(":1\r\n");
  c.AppendOut("$3\r\nabc\r\n");
  EXPECT_EQ(c.outq.size(), 1u);  // one mutable tail, three replies
  EXPECT_EQ(c.pending_out_bytes(), 5u + 4u + 9u);
  EXPECT_EQ(std::string(c.outq.front().data(), c.outq.front().size()),
            "+OK\r\n:1\r\n$3\r\nabc\r\n");
}

TEST(ConnOutQueue, LargeAppendBecomesItsOwnChunkWithoutCopy) {
  Conn c;
  c.AppendOut("+OK\r\n");
  std::string big(Conn::kCoalesceMax + 1, 'x');
  const char* payload = big.data();
  c.AppendOut(std::move(big));
  ASSERT_EQ(c.outq.size(), 2u);  // coalesced tail + the big chunk
  EXPECT_EQ(c.outq[1].data(), payload);  // the buffer moved, not copied
  // The adopted chunk then becomes the tail: later small replies coalesce
  // into it (amortized growth) until it hits kTailChunkMax.
  c.AppendOut("+OK\r\n");
  EXPECT_EQ(c.outq.size(), 2u);
  EXPECT_EQ(c.outq[1].size(), Conn::kCoalesceMax + 1 + 5);
}

TEST(ConnOutQueue, SharedFrameChargesLogicalBytesWithoutCopy) {
  auto frame = std::make_shared<const std::string>(std::string(4096, 'f'));
  Conn a;
  Conn b;
  a.AppendFrame(frame);
  b.AppendFrame(frame);
  // Both connections point at the same bytes yet each is charged in full:
  // cap accounting sees the backlog a private copy would have produced.
  EXPECT_EQ(a.outq.front().data(), frame->data());
  EXPECT_EQ(b.outq.front().data(), frame->data());
  EXPECT_EQ(a.pending_out_bytes(), 4096u);
  EXPECT_EQ(b.pending_out_bytes(), 4096u);
  EXPECT_EQ(frame.use_count(), 3);  // local + two subscribers
  a.ConsumeOut(4096);
  EXPECT_EQ(frame.use_count(), 2);  // a's ref released on full consume
  EXPECT_EQ(b.pending_out_bytes(), 4096u);  // b unaffected
}

TEST(ConnOutQueue, ConsumeResumesMidChunkAcrossKinds) {
  // Mixed queue: coalesced tail, shared frame, another tail. Consume in
  // awkward increments and check the iovec view always resumes exactly
  // where the previous partial write stopped.
  Conn c;
  c.AppendOut("0123456789");
  c.AppendFrame(std::make_shared<const std::string>("ABCDEFGHIJ"));
  c.AppendOut("abcdefghij");
  const std::string want = "0123456789ABCDEFGHIJabcdefghij";
  std::string got;
  size_t step = 1;
  while (c.WantsWrite()) {
    struct iovec iov[4];
    const size_t n = c.BuildIovecs(iov, 4);
    ASSERT_GT(n, 0u);
    // Take `step` bytes from the scattered view, as a short writev would.
    size_t take = std::min(step, c.pending_out_bytes());
    size_t left = take;
    for (size_t i = 0; i < n && left > 0; ++i) {
      const size_t k = std::min(left, iov[i].iov_len);
      got.append(static_cast<const char*>(iov[i].iov_base), k);
      left -= k;
    }
    c.ConsumeOut(take);
    step = step * 2 + 1;  // 1, 3, 7, 15, ... crosses every chunk boundary
  }
  EXPECT_EQ(got, want);
  EXPECT_TRUE(c.outq.empty());
  EXPECT_EQ(c.out_off, 0u);
}

TEST(ConnOutQueue, TailChunkStopsGrowingAtCap) {
  Conn c;
  const std::string fill(Conn::kCoalesceMax, 'y');
  size_t appends = 0;
  while (c.outq.size() < 2) {
    std::string s = fill;
    c.AppendOut(std::move(s));
    ++appends;
  }
  EXPECT_GT(appends * Conn::kCoalesceMax, Conn::kTailChunkMax);
  EXPECT_LE(c.outq.front().size(),
            Conn::kTailChunkMax + Conn::kCoalesceMax);
}

TEST(ConnOutQueue, CompleteMovesStagedReplies) {
  // Out-of-order completions stage in the reorder buffer; once the gap
  // fills, the staged strings must MOVE into the queue (large replies keep
  // their buffer identity — the reply-staging copy was a real regression).
  Conn c;
  std::string big(Conn::kCoalesceMax + 100, 'r');
  const char* payload = big.data();
  EXPECT_FALSE(c.Complete(1, std::move(big)));  // gap: seq 0 missing
  EXPECT_EQ(c.pending_out_bytes(), 0u);
  EXPECT_TRUE(c.Complete(0, "+OK\r\n"));
  ASSERT_EQ(c.outq.size(), 2u);
  EXPECT_EQ(c.outq[1].data(), payload);  // staged reply moved, not copied
  EXPECT_EQ(c.next_to_send, 2u);
}

// ---- End-to-end loopback ----------------------------------------------------

class ServerE2E : public ::testing::TestWithParam<IoParam> {
 protected:
  ServerOptions Opts() {
    ServerOptions o;
    o.nshards = 4;
    o.shard = SmallShard(16);
    o.loops = GetParam().loops;
    o.poller = GetParam().poller;
    return o;
  }
};

TEST_P(ServerE2E, CommandsRoundtrip) {
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;
  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;

  EXPECT_TRUE(c->Ping());
  EXPECT_TRUE(c->Set("alpha", "1"));
  EXPECT_EQ(c->Get("alpha").value_or("?"), "1");
  EXPECT_FALSE(c->Get("missing").has_value());
  EXPECT_TRUE(c->Hset("alpha", 0, "2"));
  EXPECT_EQ(c->Get("alpha").value_or("?"), "2");
  EXPECT_FALSE(c->Hset("missing", 0, "x"));
  EXPECT_TRUE(c->Mset({{"m1", "a"}, {"m2", "b"}, {"m3", "c"}}));
  EXPECT_EQ(c->Get("m2").value_or("?"), "b");
  EXPECT_TRUE(c->Del("alpha"));
  EXPECT_FALSE(c->Del("alpha"));
  EXPECT_TRUE(c->Touch("m1"));

  const auto stats = c->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("shard0:"), std::string::npos);
  EXPECT_NE(stats->find("poller=" + GetParam().poller), std::string::npos);
  EXPECT_NE(stats->find("loops=" + std::to_string(GetParam().loops)),
            std::string::npos);

  EXPECT_TRUE(c->Shutdown());
  server->Wait();
  EXPECT_TRUE(server->shutdown_report().ok);
}

TEST_P(ServerE2E, PipelinedRepliesKeepCommandOrder) {
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;
  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;

  // Interleave writes and reads across all shards in one pipeline; the
  // replies must come back in command order even though shard batches
  // complete independently.
  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    c->PipeSet("p" + std::to_string(i), std::to_string(i));
    c->PipeGet("p" + std::to_string(i));
  }
  std::vector<RespReply> replies;
  ASSERT_TRUE(c->Sync(&replies));
  ASSERT_EQ(replies.size(), 2u * kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(replies[2 * i].type, RespReply::Type::kSimple) << i;
    ASSERT_EQ(replies[2 * i + 1].type, RespReply::Type::kBulk) << i;
    EXPECT_EQ(replies[2 * i + 1].str, std::to_string(i)) << i;
  }
  EXPECT_TRUE(c->Shutdown());
  server->Wait();
}

TEST_P(ServerE2E, ProtocolErrorClosesOnlyOffendingConnection) {
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;
  auto good = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(good, nullptr) << err;
  ASSERT_TRUE(good->Set("stable", "yes"));

  // Raw-socket misbehaver: an inline (non-RESP) command is a protocol
  // violation — the server must reply -ERR and close only this connection.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char junk[] = "NOT RESP\r\n";
    ASSERT_EQ(::write(fd, junk, sizeof(junk) - 1),
              static_cast<ssize_t>(sizeof(junk) - 1));
    std::string got;
    char buf[512];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) {
        break;  // server closed the connection after the error reply
      }
      got.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(got.rfind("-ERR", 0), 0u) << got;
  }

  // The well-behaved connection is unaffected.
  EXPECT_EQ(good->Get("stable").value_or("?"), "yes");
  EXPECT_TRUE(good->Shutdown());
  server->Wait();
}

TEST_P(ServerE2E, ConcurrentClientsThenRestartRecoversEverything) {
  // The ISSUE acceptance test: 4 client threads write disjoint key ranges,
  // SHUTDOWN, restart a fresh Server on the same device images, verify
  // every key and a clean integrity audit (I1–I7 ran inside Quiesce on both
  // shutdowns; recovery ran on restart).
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_e2e_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam().loops) + GetParam().poller))
          .string();
  ServerOptions opts = Opts();
  opts.shard.image_base = base;
  const int kThreads = 4, kPerThread = 250;

  std::string err;
  {
    auto server = Server::Start(opts, &err);
    ASSERT_NE(server, nullptr) << err;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::string terr;
        auto c = Client::Connect("127.0.0.1", server->port(), &terr);
        if (c == nullptr) {
          ++failures;
          return;
        }
        for (int i = 0; i < kPerThread; ++i) {
          const std::string key = "t" + std::to_string(t) + ":" + std::to_string(i);
          if (!c->Set(key, "val:" + key)) {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    ASSERT_EQ(failures.load(), 0);
    auto c = Client::Connect("127.0.0.1", server->port(), &err);
    ASSERT_NE(c, nullptr) << err;
    ASSERT_TRUE(c->Shutdown());  // quiesce + audit + save images
    server->Wait();
    ASSERT_TRUE(server->shutdown_report().ok);
  }

  {
    auto server = Server::Start(opts, &err);  // recovers from the images
    ASSERT_NE(server, nullptr) << err;
    EXPECT_TRUE(server->AnyShardRecovered());
    auto c = Client::Connect("127.0.0.1", server->port(), &err);
    ASSERT_NE(c, nullptr) << err;
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + ":" + std::to_string(i);
        ASSERT_EQ(c->Get(key).value_or("<missing>"), "val:" + key) << key;
      }
    }
    ASSERT_TRUE(c->Shutdown());
    server->Wait();
    EXPECT_TRUE(server->shutdown_report().ok);  // audit clean after recovery
  }

  for (uint32_t i = 0; i < opts.nshards; ++i) {
    std::filesystem::remove(base + ".shard" + std::to_string(i) + ".img");
  }
}

// ---- Wire-level protocol robustness ----------------------------------------
// The parser unit tests above prove the state machine; these drive the same
// inputs through a real socket against both pollers: the server must reply
// -ERR, close only the offending connection, and stay healthy.

// Minimal raw TCP helper (the Client class refuses to send malformed bytes).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  bool ok() const { return fd_ >= 0; }
  bool Send(const std::string& bytes) {
    return ::write(fd_, bytes.data(), bytes.size()) ==
           static_cast<ssize_t>(bytes.size());
  }
  // Reads until the peer closes (or `stop_at` bytes arrived, if non-zero).
  std::string ReadUntilClose(size_t stop_at = 0) {
    std::string got;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        break;
      }
      got.append(buf, static_cast<size_t>(n));
      if (stop_at != 0 && got.size() >= stop_at) {
        break;
      }
    }
    return got;
  }

 private:
  int fd_ = -1;
};

TEST_P(ServerE2E, MalformedWireFramesGetErrorAndClose) {
  struct Case {
    const char* name;
    std::string wire;
  };
  const std::vector<Case> cases = {
      {"inline-command", "GET key\r\n"},
      {"empty-array", "*0\r\n"},
      {"negative-array", "*-1\r\n"},
      {"missing-bulk-header", "*2\r\nGET\r\n"},
      {"negative-bulk-len", "*1\r\n$-1\r\n"},
      {"leading-zero-len", "*1\r\n$04\r\nabcd\r\n"},
      {"body-overruns-len", "*1\r\n$3\r\nabcdef\r\n"},
      {"bad-bulk-terminator", "*1\r\n$3\r\nabcXY"},
      {"oversized-bulk", "*1\r\n$999999999\r\n"},
      {"oversized-arity", "*99999\r\n"},
      {"junk-after-arity", "*2x\r\n"},
  };
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;

  for (const Case& c : cases) {
    RawConn raw(server->port());
    ASSERT_TRUE(raw.ok()) << c.name;
    ASSERT_TRUE(raw.Send(c.wire)) << c.name;
    const std::string got = raw.ReadUntilClose();
    EXPECT_EQ(got.rfind("-ERR", 0), 0u) << c.name << ": " << got;
  }

  // After every abuse the server still serves well-formed traffic.
  auto good = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(good, nullptr) << err;
  ASSERT_TRUE(good->Set("still", "alive"));
  EXPECT_EQ(good->Get("still").value_or("?"), "alive");
  EXPECT_TRUE(good->Shutdown());
  server->Wait();
}

TEST_P(ServerE2E, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  // A client that sends half a frame and vanishes must not wedge the loop
  // or leak the partial parse into another connection.
  const std::vector<std::string> partials = {
      "*2\r\n",                    // array header only
      "*2\r\n$3\r\nGET\r\n$10\r\n",  // waiting for bulk body
      "*2\r\n$3\r\nGE",            // mid-bulk-body
      "*",                         // single byte
  };
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;
  for (const std::string& w : partials) {
    RawConn raw(server->port());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.Send(w));
  }  // destructor closes mid-frame
  auto good = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(good, nullptr) << err;
  EXPECT_TRUE(good->Ping());
  EXPECT_TRUE(good->Shutdown());
  server->Wait();
}

TEST_P(ServerE2E, PipelinedCommandsSplitAcrossTinyWrites) {
  // A pipeline of SET/GET pairs dribbled onto the socket in 7-byte writes:
  // the parser state must survive arbitrary read boundaries end-to-end and
  // replies must come back complete and in order.
  std::string err;
  auto server = Server::Start(Opts(), &err);
  ASSERT_NE(server, nullptr) << err;
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());

  const int kN = 20;
  std::string wire;
  std::string expect;
  for (int i = 0; i < kN; ++i) {
    const std::string v = "value-" + std::to_string(i);
    wire += Frame({"SET", "ck" + std::to_string(i), v});
    wire += Frame({"GET", "ck" + std::to_string(i)});
    expect += "+OK\r\n$" + std::to_string(v.size()) + "\r\n" + v + "\r\n";
  }
  for (size_t off = 0; off < wire.size(); off += 7) {
    ASSERT_TRUE(raw.Send(wire.substr(off, 7)));
  }
  EXPECT_EQ(raw.ReadUntilClose(expect.size()), expect);

  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;
  EXPECT_TRUE(c->Shutdown());
  server->Wait();
}

INSTANTIATE_TEST_SUITE_P(IoPlane, ServerE2E, ::testing::ValuesIn(IoParams()),
                         IoParamName);

// ---- Multi-loop-specific behavior -------------------------------------------
// These run once (not per-param): each pins the loops/poller shape it needs.

// With reuseport off the pool falls back to accept-and-hand-off: loop 0 owns
// the only listener and deals connections round-robin, so the Nth connect
// lands deterministically on loop N % loops. That determinism is what lets
// these tests place traffic on specific loops.
ServerOptions MultiLoopOpts(uint32_t loops) {
  ServerOptions o;
  o.nshards = 4;
  o.shard = SmallShard(16);
  o.loops = loops;
  o.reuseport = false;  // hand-off mode: deterministic conn → loop placement
  return o;
}

TEST(MultiLoop, CrossLoopSessionRead) {
  // The session-consistency contract must hold across loops: a SET on a
  // loop-0 connection, then a MINSEQ-gated GET on a loop-1 connection using
  // the writer's LASTSEQ token. The read either sees the write immediately
  // or parks on the shard until the write's sequence applies — its
  // completion must then find its way back to loop 1, not loop 0.
  std::string err;
  auto server = Server::Start(MultiLoopOpts(2), &err);
  ASSERT_NE(server, nullptr) << err;

  auto writer = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(writer, nullptr) << err;  // conn #1 → loop 0
  auto reader = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(reader, nullptr) << err;  // conn #2 → loop 1

  for (int i = 0; i < 50; ++i) {
    const std::string k = "xl:" + std::to_string(i);
    const uint32_t shard = ShardFor(k, 4);
    ASSERT_TRUE(writer->Set(k, "v" + std::to_string(i))) << i;
    const auto seq = writer->LastSeq(shard);
    ASSERT_TRUE(seq.has_value()) << i << ": " << writer->last_error();
    ASSERT_TRUE(reader->MinSeq(shard, *seq)) << i << ": "
                                             << reader->last_error();
    EXPECT_EQ(reader->Get(k).value_or("<missing>"), "v" + std::to_string(i))
        << i << ": " << reader->last_error();
  }

  EXPECT_TRUE(writer->Shutdown());
  server->Wait();
  EXPECT_TRUE(server->shutdown_report().ok);
}

TEST(MultiLoop, StatsAggregateAcrossLoops) {
  // Server counters are per-loop (no cross-loop cache-line contention); the
  // STATS reply must present the aggregate. Spread clients across all four
  // loops, issue a known command count, and check the totals add up.
  std::string err;
  auto server = Server::Start(MultiLoopOpts(4), &err);
  ASSERT_NE(server, nullptr) << err;

  const int kClients = 4, kOpsEach = 25;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = Client::Connect("127.0.0.1", server->port(), &err);
    ASSERT_NE(c, nullptr) << err;
    clients.push_back(std::move(c));
  }
  for (int i = 0; i < kClients; ++i) {
    for (int j = 0; j < kOpsEach; ++j) {
      const std::string k = "agg:" + std::to_string(i) + ":" + std::to_string(j);
      ASSERT_TRUE(clients[i]->Set(k, "v"));
    }
  }

  const std::string stats = clients[0]->Stats().value_or("");
  const auto field = [&stats](const char* name) -> uint64_t {
    const size_t pos = stats.find(name);
    if (pos == std::string::npos) {
      return 0;
    }
    return std::strtoull(stats.c_str() + pos + std::strlen(name), nullptr, 10);
  };
  // accepted counts every client; commands counts at least every SET plus
  // the STATS itself; conns sees all four live connections. All of these
  // accumulated on different loops and must aggregate in one reply.
  EXPECT_GE(field("accepted="), static_cast<uint64_t>(kClients)) << stats;
  EXPECT_GE(field("commands="),
            static_cast<uint64_t>(kClients * kOpsEach) + 1)
      << stats;
  EXPECT_EQ(field("conns="), static_cast<uint64_t>(kClients)) << stats;
  EXPECT_NE(stats.find("loops=4"), std::string::npos) << stats;

  EXPECT_TRUE(clients[0]->Shutdown());
  server->Wait();
  EXPECT_TRUE(server->shutdown_report().ok);
}

TEST(MultiLoop, ShutdownUnderCrossLoopLoad) {
  // Regression for the two-phase quiesce: SHUTDOWN arrives on one loop
  // while three other loops are mid-pipeline. Every loop must stop intake,
  // drain its in-flight completions, and the shards must pass the
  // integrity audit — no completion may arrive after its loop exited.
  std::string err;
  auto server = Server::Start(MultiLoopOpts(4), &err);
  ASSERT_NE(server, nullptr) << err;

  std::atomic<bool> stop{false};
  std::atomic<int> workers_up{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      std::string werr;
      auto c = Client::Connect("127.0.0.1", server->port(), &werr);
      if (c == nullptr) {
        return;
      }
      ++workers_up;
      for (int i = 0; !stop.load(); ++i) {
        // Failures are expected once intake stops; just keep the pressure
        // on until then.
        if (!c->Set("load:" + std::to_string(t) + ":" + std::to_string(i),
                    "v")) {
          break;
        }
      }
    });
  }
  while (workers_up.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // loops busy

  auto killer = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(killer, nullptr) << err;
  EXPECT_TRUE(killer->Shutdown()) << killer->last_error();
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  server->Wait();
  EXPECT_TRUE(server->shutdown_report().ok)
      << server->shutdown_report().Summary();
}

// ---- Backpressure and per-connection resource caps --------------------------

class HardeningE2E : public ::testing::TestWithParam<IoParam> {
 protected:
  void ApplyIo(ServerOptions* o) {
    o->loops = GetParam().loops;
    o->poller = GetParam().poller;
  }
  static std::string ShardKey(uint32_t shard, uint32_t nshards, int salt = 0) {
    for (int i = salt;; ++i) {
      const std::string k = "bk:" + std::to_string(i);
      if (ShardFor(k, nshards) == shard) {
        return k;
      }
    }
  }
  static uint64_t StatsField(Client& c, const char* field) {
    const std::string stats = c.Stats().value_or("");
    const size_t pos = stats.find(field);
    if (pos == std::string::npos) {
      return 0;
    }
    return std::strtoull(stats.c_str() + pos + std::strlen(field), nullptr, 10);
  }
};

TEST_P(HardeningE2E, FloodedShardDoesNotBlockOtherShards) {
  // Regression for the event-loop stall: Shard::Submit blocked the loop
  // thread when one shard's queue filled, freezing every connection. With
  // TrySubmit + read-pause backpressure, a flood aimed at shard 0 must not
  // delay a GET on shard 1.
  ServerOptions opts;
  opts.nshards = 2;
  opts.shard = SmallShard(/*batch=*/1);
  opts.shard.queue_capacity = 4;
  opts.shard.fence_ns = 2'000'000;  // 2ms per fence: shard 0 drains slowly
  ApplyIo(&opts);
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  auto flood = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(flood, nullptr) << err;
  auto other = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(other, nullptr) << err;
  const std::string hot = ShardKey(0, 2);
  const std::string cold = ShardKey(1, 2);
  ASSERT_TRUE(other->Set(cold, "cold-value"));

  // Fire-and-forget: several hundred SETs to shard 0 without reading
  // replies. The tiny queue fills immediately; the connection must be
  // read-paused, not the event loop.
  const int kFlood = 400;
  for (int i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(flood->SendCommand({"SET", hot, "v" + std::to_string(i)}));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // queue full

  // Shard 1 is idle: this GET must complete long before the ~0.8s the
  // flood needs to drain (pre-fix it waited for the whole flood).
  const uint64_t t0 = NowNs();
  EXPECT_EQ(other->Get(cold).value_or("<missing>"), "cold-value");
  const double get_secs = static_cast<double>(NowNs() - t0) / 1e9;
  EXPECT_LT(get_secs, 0.5) << "other-shard GET stuck behind the flood";

  // No reply was lost to the backpressure: all flood SETs answer +OK.
  for (int i = 0; i < kFlood; ++i) {
    RespReply r;
    ASSERT_TRUE(flood->ReadOneReply(&r)) << i << ": " << flood->last_error();
    EXPECT_EQ(r.type, RespReply::Type::kSimple) << i << ": " << r.str;
  }

  EXPECT_TRUE(other->Shutdown());
  server->Wait();
}

TEST_P(HardeningE2E, InputBufferCapDisconnectsAndCounts) {
  ServerOptions opts;
  opts.nshards = 2;
  opts.shard = SmallShard(/*batch=*/8);
  opts.max_conn_in_bytes = 4096;
  ApplyIo(&opts);
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  // An incomplete 1MB bulk dribbles 8KB of body: the unparsed buffer blows
  // the 4KB cap long before the frame completes. The connection gets -ERR
  // and is dropped; the abuse is counted separately from protocol errors.
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw.Send("*1\r\n$1000000\r\n"));
  ASSERT_TRUE(raw.Send(std::string(8192, 'x')));
  const std::string got = raw.ReadUntilClose();
  EXPECT_EQ(got.rfind("-ERR", 0), 0u) << got;
  EXPECT_NE(got.find("cap"), std::string::npos) << got;

  auto good = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(good, nullptr) << err;
  EXPECT_EQ(StatsField(*good, "in_overflows="), 1u);
  EXPECT_TRUE(good->Ping());
  EXPECT_TRUE(good->Shutdown());
  server->Wait();
}

TEST_P(HardeningE2E, OutputCapEvictsSlowReplicationSubscriber) {
  // The classic slow-subscriber OOM: a REPLSYNC connection that never
  // reads. Once the kernel socket buffers fill, the server-side pending
  // output grows with every sealed record; past max_conn_out_bytes the
  // subscriber must be evicted instead of buffering without bound.
  ServerOptions opts;
  opts.nshards = 1;
  opts.shard = SmallShard(/*batch=*/8);
  opts.shard.device_bytes = 128ull << 20;
  opts.max_conn_out_bytes = 8192;
  ApplyIo(&opts);
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  RawConn subscriber(server->port());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(subscriber.Send(Frame({"REPLSYNC", "0", "1"})));
  // Never read a byte from `subscriber` again.

  auto good = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(good, nullptr) << err;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  const std::string big(2048, 'z');
  uint64_t evictions = 0;
  for (int i = 0; evictions == 0; ++i) {
    ASSERT_TRUE(good->Set("ok:" + std::to_string(i), big))
        << good->last_error();
    if (i % 16 == 0 || i > 256) {
      evictions = StatsField(*good, "out_overflows=");
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slow subscriber was never evicted";
  }
  EXPECT_GE(evictions, 1u);
  EXPECT_EQ(StatsField(*good, "subs="), 0u);  // the subscription is gone

  // The server is healthy and normal clients are untouched.
  EXPECT_TRUE(good->Ping());
  EXPECT_TRUE(good->Shutdown());
  server->Wait();
}

TEST_P(HardeningE2E, OutputPathCountersVisibleInStats) {
  // The chunked flush path surfaces its own counters: writev syscalls,
  // bytes the kernel accepted, and — once a REPLSYNC subscriber is fed —
  // zero-copy frame refs. All of them must be live, not placeholders.
  ServerOptions opts;
  opts.nshards = 1;
  opts.shard = SmallShard(/*batch=*/8);
  opts.shard.device_bytes = 128ull << 20;
  ApplyIo(&opts);
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(c->Set("k" + std::to_string(i), "v" + std::to_string(i)));
  }
  EXPECT_GT(StatsField(*c, "flush_syscalls="), 0u);
  EXPECT_GT(StatsField(*c, "flushed_bytes="), 0u);
  EXPECT_EQ(StatsField(*c, "frame_refs="), 0u);  // no subscriber yet

  // A draining subscriber turns sealed batches into shared-frame refs.
  auto sub = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(sub, nullptr) << err;
  ASSERT_TRUE(sub->SendCommand({"REPLSYNC", "0", "1"}));
  RespReply r;
  ASSERT_TRUE(sub->ReadOneReply(&r));  // +SYNC handshake
  while (StatsField(*c, "subs=") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(c->Set("s" + std::to_string(i), "v"));
  }
  EXPECT_GT(StatsField(*c, "frame_refs="), 0u);
  EXPECT_GT(StatsField(*c, "stream_frames="), 0u);
  // chunks_per_flush renders as a decimal; just check the field exists.
  EXPECT_NE(c->Stats().value_or("").find("chunks_per_flush="),
            std::string::npos);

  sub->ShutdownSocket();
  EXPECT_TRUE(c->Shutdown());
  server->Wait();
}

TEST_P(HardeningE2E, PartialWritevResumesMidChunk) {
  // A reply far larger than the socket buffers forces the flush to stop
  // mid-chunk (EAGAIN) and resume across many poller wakeups; a reader
  // that drains slowly must still receive byte-exact data. This exercises
  // out_off resume + BuildIovecs offset math end to end.
  ServerOptions opts;
  opts.nshards = 1;
  opts.shard = SmallShard(/*batch=*/4);
  opts.shard.device_bytes = 128ull << 20;
  ApplyIo(&opts);
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  std::string big(6 << 20, '\0');  // 6MB >> any default socket buffer
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i * 131) % 26);
  }
  auto w = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(w, nullptr) << err;
  ASSERT_TRUE(w->Set("big", big)) << w->last_error();

  // Interleave small replies so the queue holds multiple chunks when the
  // big GET lands: PING replies coalesce, the big value rides alone.
  RawConn raw(server->port());
  ASSERT_TRUE(raw.ok());
  std::string wire;
  wire += Frame({"PING"});
  wire += Frame({"GET", "big"});
  wire += Frame({"PING"});
  ASSERT_TRUE(raw.Send(wire));
  std::string want = "+PONG\r\n$" + std::to_string(big.size()) + "\r\n" +
                     big + "\r\n+PONG\r\n";
  std::string got = raw.ReadUntilClose(want.size());
  EXPECT_EQ(got.size(), want.size());
  EXPECT_EQ(got, want);

  EXPECT_TRUE(w->Shutdown());
  server->Wait();
}

INSTANTIATE_TEST_SUITE_P(IoPlane, HardeningE2E,
                         ::testing::ValuesIn(IoParams()), IoParamName);

// ---- Loadgen smoke ----------------------------------------------------------
// Shells out to the real jnvm_loadgen binary (path injected by CMake)
// against in-process servers: a bounded session-consistency run where the
// tool's own oracle is the assertion — --expect-hits makes any miss fatal,
// and -STALE replies are fatal by default. A primary + replica pair driven
// with --read-from=replica proves the whole client-side routing stack
// (LASTSEQ capture, per-endpoint MINSEQ bookkeeping, stale accounting).

#ifdef JNVM_LOADGEN_BIN
TEST(LoadgenSmoke, SessionReplicaReadsExpectHits) {
  ServerOptions popts;
  popts.nshards = 2;
  popts.shard.device_bytes = 64ull << 20;
  popts.shard.map_capacity = 1 << 12;
  std::string err;
  auto primary = Server::Start(popts, &err);
  ASSERT_NE(primary, nullptr) << err;
  ServerOptions ropts = popts;
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary->port());
  auto replica = Server::Start(ropts, &err);
  ASSERT_NE(replica, nullptr) << err;

  const std::string cmd =
      std::string(JNVM_LOADGEN_BIN) +
      " --port=" + std::to_string(primary->port()) +
      " --read-from=replica --read-endpoints=127.0.0.1:" +
      std::to_string(replica->port()) +
      " --consistency=session --shards=2 --ycsb=b --expect-hits" +
      " --threads=2 --keys=300 --ops=800 --pipeline=8 --seconds=30" +
      " >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}
// MULTI/EXEC load against a 4-shard primary: mixed single-shard (kTxnExec
// fast path) and cross-shard (2PC decision record) groups, then the built-in
// all-or-nothing sweep. The loadgen exits non-zero on any partial apply, any
// per-op error, or a group carrying a foreign value.
TEST(LoadgenSmoke, TxnModeCommitsAtomically) {
  ServerOptions opts;
  opts.nshards = 4;
  opts.shard.device_bytes = 64ull << 20;
  opts.shard.map_capacity = 1 << 12;
  std::string err;
  auto server = Server::Start(opts, &err);
  ASSERT_NE(server, nullptr) << err;

  const std::string cmd =
      std::string(JNVM_LOADGEN_BIN) +
      " --port=" + std::to_string(server->port()) +
      " --shards=4 --txn=4 --cross-shard-pct=50 --txn-verify" +
      " --threads=2 --keys=64 --ops=400 --seconds=30 >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // The run actually exercised both commit paths: decisions sealed (cross-
  // shard) and more prepares than decisions (single-shard fast path never
  // seals one).
  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;
  const std::string stats = c->Stats().value_or("");
  const auto field = [&stats](const char* name) -> uint64_t {
    const size_t pos = stats.find(name);
    if (pos == std::string::npos) {
      return 0;
    }
    return std::strtoull(stats.c_str() + pos + std::strlen(name), nullptr, 10);
  };
  EXPECT_GT(field("decision_records="), 0u) << stats;
  EXPECT_GT(field("committed="), field("decision_records=")) << stats;
  EXPECT_EQ(field("inflight="), 0u) << stats;
  ASSERT_TRUE(c->Shutdown());
  server->Wait();
}
#endif  // JNVM_LOADGEN_BIN

}  // namespace
}  // namespace jnvm::server
