// Tests for the code generator (tools/jnvm_gen): the generated proxies must
// behave exactly like hand-written ones — field round-trips for every type,
// failure-atomic wrapping for fa=non-private classes, tracers feeding the
// recovery GC, and transient fields staying volatile.
#include <gtest/gtest.h>

#include "gen_types.gen.h"  // produced by jnvm_gen at build time
#include "src/core/integrity.h"

namespace {

using jnvm::core::JnvmRuntime;

struct Fixture {
  Fixture() {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 16 << 20;
    dev = std::make_unique<jnvm::nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<jnvm::nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

TEST(CodegenTest, AllScalarTypesRoundTrip) {
  Fixture f;
  GenAllTypes g(*f.rt);
  g.SetTiny(-8);
  g.SetSmall(-1600);
  g.SetMedium(-320000);
  g.SetLarge(-64'000'000'000);
  g.SetUtiny(200);
  g.SetUsmall(60'000);
  g.SetUmedium(4'000'000'000u);
  g.SetUlarge(18'000'000'000'000'000'000ull);
  g.SetRatio(0.5f);
  g.SetPrecise(3.14159265358979);
  EXPECT_EQ(g.Tiny(), -8);
  EXPECT_EQ(g.Small(), -1600);
  EXPECT_EQ(g.Medium(), -320000);
  EXPECT_EQ(g.Large(), -64'000'000'000);
  EXPECT_EQ(g.Utiny(), 200);
  EXPECT_EQ(g.Usmall(), 60'000);
  EXPECT_EQ(g.Umedium(), 4'000'000'000u);
  EXPECT_EQ(g.Ularge(), 18'000'000'000'000'000'000ull);
  EXPECT_FLOAT_EQ(g.Ratio(), 0.5f);
  EXPECT_DOUBLE_EQ(g.Precise(), 3.14159265358979);
}

TEST(CodegenTest, BytesFieldRoundTrip) {
  Fixture f;
  GenAllTypes g(*f.rt);
  const char msg[] = "exactly-thirty-one-bytes-here!";
  g.WriteBlob(msg, sizeof(msg));
  char out[sizeof(msg)];
  g.ReadBlob(out, sizeof(out));
  EXPECT_STREQ(out, msg);
}

TEST(CodegenTest, TransientFieldDefaultsAndStaysVolatile) {
  Fixture f;
  GenAllTypes g(*f.rt);
  EXPECT_EQ(g.scratch, -1);  // the declared default
  g.scratch = 42;
  g.SetMedium(7);
  g.Pwb();
  g.Validate();
  f.rt->root().Put("g", &g);
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  const auto loaded = f.rt->root().GetAs<GenAllTypes>("g");
  EXPECT_EQ(loaded->Medium(), 7);
  EXPECT_EQ(loaded->scratch, -1) << "transient must reset on resurrection";
}

TEST(CodegenTest, GeneratedTracerFeedsRecovery) {
  Fixture f;
  {
    GenAllTypes parent(*f.rt);
    parent.SetMedium(1);
    parent.Pwb();
    parent.Validate();
    GenAllTypes child(*f.rt);
    child.SetMedium(2);
    parent.UpdateChild(&child);  // generated §4.1.6 helper: valid + fenced
    f.rt->root().Put("p", &parent);
  }
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  const auto p = f.rt->root().GetAs<GenAllTypes>("p");
  const auto child = p->ChildAs<GenAllTypes>();
  ASSERT_NE(child, nullptr) << "tracer missed the ref: recovery dropped it";
  EXPECT_EQ(child->Medium(), 2);
  EXPECT_TRUE(jnvm::core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(CodegenTest, FaWrappedSettersAreAtomic) {
  // GenAtomic is fa=non-private: each generated setter opens its own
  // failure-atomic block, so a torn multi-cache-line value is impossible.
  for (uint64_t crash_at = 5; crash_at < 200; crash_at += 13) {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 16 << 20;
    o.strict = true;
    auto dev = std::make_unique<jnvm::nvm::PmemDevice>(o);
    {
      auto rt = JnvmRuntime::Format(dev.get());
      GenAtomic g(*rt);
      g.SetCounter(1111);
      g.Pwb();
      g.Validate();
      rt->root().Put("g", &g);
      rt->Psync();
      dev->ScheduleCrashAfter(crash_at);
      try {
        g.SetCounter(2222);  // wrapped: all-or-nothing
        dev->CancelScheduledCrash();
      } catch (const jnvm::nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
    dev->Crash(crash_at);
    auto rt = JnvmRuntime::Open(dev.get());
    const auto g = rt->root().GetAs<GenAtomic>("g");
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(g->Counter() == 1111 || g->Counter() == 2222)
        << "torn generated setter at crash point " << crash_at;
  }
}

TEST(CodegenTest, PerFieldFlushHelpers) {
  Fixture f;
  GenAllTypes g(*f.rt);
  g.SetLarge(99);
  g.PwbLarge();  // generated pwbX() (§3.2.2)
  f.rt->Pfence();
  EXPECT_EQ(g.Large(), 99);
}

}  // namespace
