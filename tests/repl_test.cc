// Tests for the replication subsystem (src/repl + the server's replication
// plane): wire-frame codecs, the durable per-shard replication log
// (append/read, ring rollover, torn-tail recovery, snapshot-install
// markers), follower write rejection, and in-process primary→replica
// end-to-end flows — live sync, snapshot bootstrap, replica restart resync,
// and promotion after the primary dies.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/runtime.h"
#include "src/nvm/pmem_device.h"
#include "src/pdt/register_all.h"
#include "src/repl/frame.h"
#include "src/repl/repl_log.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/shard.h"

namespace jnvm::repl {
namespace {

void RegisterClasses() {
  pdt::RegisterStandardClasses();
  ReplLogRoot::Class();
  ReplLogSegment::Class();
}

// ---- Wire frames ------------------------------------------------------------

std::string Binary(size_t n, uint8_t seed) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>((seed + i * 7) & 0xff));  // \r \n \0 included
  }
  return s;
}

TEST(ReplFrame, BatchRoundtripAllKindsBinarySafe) {
  std::vector<ReplOp> ops(3);
  ops[0].kind = ReplOp::Kind::kPut;
  ops[0].key = Binary(17, 3);
  ops[0].record.fields = {Binary(100, 9), "", Binary(1, 0)};
  ops[1].kind = ReplOp::Kind::kDel;
  ops[1].key = Binary(1, 13);
  ops[2].kind = ReplOp::Kind::kUpdate;
  ops[2].key = "plain";
  ops[2].field = 7;
  ops[2].value = Binary(64, 200);

  std::string frame;
  EncodeBatch(ops, &frame);
  std::vector<ReplOp> got;
  ASSERT_TRUE(DecodeBatch(frame, &got));
  EXPECT_EQ(got, ops);
}

TEST(ReplFrame, EmptyBatchRoundtrips) {
  std::string frame;
  EncodeBatch({}, &frame);
  std::vector<ReplOp> got;
  ASSERT_TRUE(DecodeBatch(frame, &got));
  EXPECT_TRUE(got.empty());
}

TEST(ReplFrame, TruncatedBatchRejectedAtEveryCut) {
  std::vector<ReplOp> ops(1);
  ops[0].key = "k";
  ops[0].record.fields = {"value-bytes"};
  std::string frame;
  EncodeBatch(ops, &frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<ReplOp> got;
    EXPECT_FALSE(DecodeBatch(std::string_view(frame).substr(0, cut), &got))
        << "cut at " << cut;
  }
}

TEST(ReplFrame, RecordRoundtripAndShortInputRejected) {
  const std::string batch = Binary(33, 77);
  std::string frame;
  EncodeRecord(42, batch, &frame);
  uint64_t seq = 0;
  std::string_view body;
  ASSERT_TRUE(DecodeRecord(frame, &seq, &body));
  EXPECT_EQ(seq, 42u);
  EXPECT_EQ(body, batch);
  EXPECT_FALSE(DecodeRecord(std::string_view(frame).substr(0, 7), &seq, &body));
}

TEST(ReplFrame, SnapshotRoundtrip) {
  std::vector<SnapshotEntry> entries(2);
  entries[0].key = Binary(9, 1);
  entries[0].record.fields = {Binary(40, 5), Binary(3, 8)};
  entries[1].key = "k2";
  entries[1].record.fields = {"v"};
  std::string frame;
  EncodeSnapshot(1234, entries, &frame);
  uint64_t snap_seq = 0;
  std::vector<SnapshotEntry> got;
  ASSERT_TRUE(DecodeSnapshot(frame, &snap_seq, &got));
  EXPECT_EQ(snap_seq, 1234u);
  EXPECT_EQ(got, entries);
  EXPECT_FALSE(DecodeSnapshot(std::string_view(frame).substr(0, frame.size() - 1),
                              &snap_seq, &got));
}

// ---- Replication log --------------------------------------------------------

struct LogFixture {
  explicit LogFixture(bool strict = false) {
    RegisterClasses();
    nvm::DeviceOptions o;
    o.size_bytes = 32 << 20;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = core::JnvmRuntime::Format(dev.get());
  }
  void Reopen() {
    rt.reset();
    rt = core::JnvmRuntime::Open(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
};

ReplLogOptions TinyLog() {
  ReplLogOptions o;
  o.segment_bytes = 256;
  o.max_segments = 3;
  return o;
}

std::string Payload(uint64_t seq) {
  return "payload-" + std::to_string(seq) + "-" + Binary(16, static_cast<uint8_t>(seq));
}

TEST(ReplLog, AppendReadRoundtrip) {
  LogFixture f;
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
  EXPECT_TRUE(log->empty());
  EXPECT_EQ(log->next_seq(), 1u);
  for (uint64_t s = 1; s <= 20; ++s) {
    log->Append(s, Payload(s));
  }
  f.rt->Psync();
  EXPECT_EQ(log->next_seq(), 21u);
  EXPECT_EQ(log->start_seq(), 1u);
  for (uint64_t s = 1; s <= 20; ++s) {
    std::string got;
    ASSERT_TRUE(log->Read(s, &got)) << s;
    EXPECT_EQ(got, Payload(s));
  }
  std::string got;
  EXPECT_FALSE(log->Read(0, &got));
  EXPECT_FALSE(log->Read(21, &got));
}

TEST(ReplLog, RolloverTruncatesOldestAndBoundsSegments) {
  LogFixture f;
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
  const uint64_t kN = 60;  // ~40 B payloads over 256 B segments → many rolls
  for (uint64_t s = 1; s <= kN; ++s) {
    log->Append(s, Payload(s));
    f.rt->Psync();
    f.rt->DrainGroupFrees();
  }
  EXPECT_LE(log->segments(), 3u);
  EXPECT_GT(log->start_seq(), 1u);  // retention kicked in
  EXPECT_EQ(log->next_seq(), kN + 1);
  std::string got;
  EXPECT_FALSE(log->Read(log->start_seq() - 1, &got));  // truncated away
  for (uint64_t s = log->start_seq(); s <= kN; ++s) {
    ASSERT_TRUE(log->Read(s, &got)) << s;
    EXPECT_EQ(got, Payload(s));
  }
}

TEST(ReplLog, OversizedRecordGetsDedicatedSegment) {
  LogFixture f;
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
  const std::string big = Binary(1000, 42);  // > segment_bytes
  log->Append(1, big);
  f.rt->Psync();
  std::string got;
  ASSERT_TRUE(log->Read(1, &got));
  EXPECT_EQ(got, big);
}

TEST(ReplLog, ReopenRecoversSealedRecords) {
  LogFixture f;
  {
    auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
    for (uint64_t s = 1; s <= 30; ++s) {
      log->Append(s, Payload(s));
      f.rt->Psync();
      f.rt->DrainGroupFrees();
    }
  }
  f.rt->Psync();
  f.Reopen();
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
  EXPECT_FALSE(log->needs_snapshot());
  EXPECT_EQ(log->next_seq(), 31u);
  std::string got;
  for (uint64_t s = log->start_seq(); s <= 30; ++s) {
    ASSERT_TRUE(log->Read(s, &got)) << s;
    EXPECT_EQ(got, Payload(s));
  }
}

TEST(ReplLog, TornTailNeverResurrectsUnsealedRecord) {
  // Seal records 1..3 with Psyncs, append record 4 WITHOUT a Psync, crash.
  // Under every eviction seed, recovery must retain 1..3 byte-identical and
  // report next_seq ∈ {4, 5}: 4 when the tail tore, 5 only if every line of
  // record 4 happened to survive — in which case it must read back intact.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    LogFixture f(/*strict=*/true);
    {
      auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
      for (uint64_t s = 1; s <= 3; ++s) {
        log->Append(s, Payload(s));
        f.rt->Psync();
      }
      log->Append(4, Payload(4));  // unsealed: no Psync
      f.rt->Abandon();
    }
    f.rt.reset();
    f.dev->Crash(seed * 0x9e3779b97f4a7c15ull);
    f.rt = core::JnvmRuntime::Open(f.dev.get());
    auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
    EXPECT_FALSE(log->needs_snapshot()) << "seed " << seed;
    ASSERT_GE(log->next_seq(), 4u) << "seed " << seed;
    ASSERT_LE(log->next_seq(), 5u) << "seed " << seed;
    std::string got;
    for (uint64_t s = 1; s < log->next_seq(); ++s) {
      ASSERT_TRUE(log->Read(s, &got)) << "seed " << seed << " seq " << s;
      EXPECT_EQ(got, Payload(s)) << "seed " << seed << " seq " << s;
    }
    // Appending after tail-zeroing must work and survive a reopen.
    log->Append(log->next_seq(), Payload(99));
    f.rt->Psync();
  }
}

TEST(ReplLog, TruncateBelowReclaimsPrefixAndPreservesWatermark) {
  LogFixture f;
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
  for (uint64_t s = 1; s <= 12; ++s) {
    log->Append(s, Payload(s));
    f.rt->Psync();
    f.rt->DrainGroupFrees();
  }
  // Checkpoint-style truncation at the second retained segment's base:
  // exactly the first segment is reclaimed, everything at or above the
  // bound stays readable.
  const auto digests = log->SegmentDigests();
  ASSERT_GE(digests.size(), 2u);
  const uint64_t bound = digests[1].base_seq;
  ASSERT_GT(bound, log->start_seq());
  EXPECT_EQ(log->TruncateBelow(bound), 1u);
  f.rt->Psync();
  f.rt->DrainGroupFrees();
  EXPECT_EQ(log->start_seq(), bound);
  std::string got;
  EXPECT_FALSE(log->Read(bound - 1, &got));
  for (uint64_t s = bound; s <= 12; ++s) {
    ASSERT_TRUE(log->Read(s, &got)) << s;
    EXPECT_EQ(got, Payload(s));
  }
  // Truncation is segment-granular: a bound inside a segment reclaims
  // nothing (the segment still holds records at or above the bound).
  EXPECT_EQ(log->TruncateBelow(bound + 1), 0u);

  // Truncate-to-empty (a checkpoint covering every sealed record) must
  // persist the sequence watermark: a reopen may not regress next_seq even
  // though no segment survives to carry it.
  EXPECT_GT(log->TruncateBelow(log->next_seq()), 0u);
  f.rt->Psync();
  f.rt->DrainGroupFrees();
  EXPECT_TRUE(log->empty());
  EXPECT_EQ(log->next_seq(), 13u);
  f.Reopen();
  log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", TinyLog());
  EXPECT_TRUE(log->empty());
  EXPECT_FALSE(log->needs_snapshot());
  EXPECT_EQ(log->next_seq(), 13u);
  log->Append(13, Payload(13));
  f.rt->Psync();
  ASSERT_TRUE(log->Read(13, &got));
  EXPECT_EQ(got, Payload(13));
}

TEST(ReplLog, SegmentDigestsVerifyDetectsMatchAndDivergence) {
  LogFixture f;
  auto a = ReplLog::OpenOrCreate(f.rt.get(), "la", TinyLog());
  auto b = ReplLog::OpenOrCreate(f.rt.get(), "lb", TinyLog());
  for (uint64_t s = 1; s <= 8; ++s) {
    a->Append(s, Payload(s));
    b->Append(s, Payload(s));
  }
  f.rt->Psync();
  // Identical histories: every advertised range verifies on the peer.
  for (const SegDigest& d : a->SegmentDigests()) {
    EXPECT_TRUE(b->VerifyDigest(d)) << d.base_seq;
  }
  // Same seq, different bytes — the divergence a stale rejoin must catch.
  a->Append(9, "branch-a");
  b->Append(9, "branch-b");
  f.rt->Psync();
  const auto da = a->SegmentDigests();
  EXPECT_FALSE(b->VerifyDigest(da.back()));
  // Advertisement frame codec roundtrip, truncated input rejected.
  std::string frame;
  EncodeSegDigests(da, &frame);
  std::vector<SegDigest> got;
  ASSERT_TRUE(DecodeSegDigests(frame, &got));
  EXPECT_EQ(got, da);
  EXPECT_FALSE(DecodeSegDigests(
      std::string_view(frame).substr(0, frame.size() - 1), &got));
  // A range reaching below the retained log cannot be verified — the
  // primary answers -SNAPSHOT rather than guessing.
  b->TruncateBelow(b->SegmentDigests()[1].base_seq);
  f.rt->Psync();
  f.rt->DrainGroupFrees();
  EXPECT_FALSE(b->VerifyDigest(da.front()));
}

TEST(ReplLog, InterruptedSnapshotInstallReportsNeedsSnapshot) {
  LogFixture f;
  {
    auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
    log->Append(1, Payload(1));
    f.rt->Psync();
    log->BeginInstall();  // crash window opens here
    f.rt->Psync();
  }
  f.Reopen();
  {
    auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
    EXPECT_TRUE(log->needs_snapshot());
    log->FinishInstall(41);  // re-bootstrap completed at snap_seq 40
    f.rt->Psync();
    EXPECT_FALSE(log->needs_snapshot());
    EXPECT_EQ(log->next_seq(), 41u);
    EXPECT_TRUE(log->empty());
  }
  f.Reopen();
  auto log = ReplLog::OpenOrCreate(f.rt.get(), "repl0", ReplLogOptions{});
  EXPECT_FALSE(log->needs_snapshot());
  EXPECT_EQ(log->next_seq(), 41u);
}

}  // namespace
}  // namespace jnvm::repl

// ---- Follower shard and primary→replica e2e ---------------------------------

namespace jnvm::server {
namespace {

class CollectSink : public CompletionSink {
 public:
  void OnCompletion(Completion&& c) override {
    std::lock_guard<std::mutex> lk(mu_);
    got_.push_back(std::move(c));
  }
  std::vector<Completion> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(got_);
  }

 private:
  mutable std::mutex mu_;
  std::vector<Completion> got_;
};

ShardOptions SmallShard() {
  ShardOptions o;
  o.device_bytes = 32ull << 20;
  o.map_capacity = 1 << 10;
  o.batch = 8;
  return o;
}

TEST(FollowerShard, RejectsClientWritesServesReads) {
  CollectSink sink;
  ShardOptions o = SmallShard();
  o.follower = true;
  auto shard = Shard::Open(o, 0, &sink);
  ASSERT_TRUE(shard->follower());

  auto submit = [&](Request::Op op, const std::string& key, uint64_t seq) {
    Request r;
    r.op = op;
    r.key = key;
    r.value = "v";
    r.conn_id = 1;
    r.seq = seq;
    ASSERT_TRUE(shard->Submit(std::move(r)));
  };
  submit(Request::Op::kSet, "k", 1);
  submit(Request::Op::kDel, "k", 2);
  submit(Request::Op::kHset, "k", 3);
  submit(Request::Op::kGet, "missing", 4);
  const ShardReport rep = shard->Quiesce();
  EXPECT_TRUE(rep.integrity_ok);

  auto got = sink.take();
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].reply.rfind("-READONLY", 0), 0u) << got[i].reply;
  }
  EXPECT_EQ(got[3].reply, "$-1\r\n");  // reads still served
}

TEST(FollowerShard, MidBootstrapRefusesSnapshotAndDiffWithRetryLater) {
  // Craft a shard image whose replication log crashed between a snapshot
  // install's fences (snap_pending set, never cleared). A follower opening
  // it is mid-bootstrap: its store is not a sealed prefix of anything, so
  // feeding a downstream (REPLSNAP / REPLDIFF) must be refused with the
  // explicit -RETRYLATER the pull client backs off on.
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_retrylater_" + std::to_string(::getpid())))
          .string();
  const std::string img = base + ".shard0.img";
  {
    pdt::RegisterStandardClasses();
    repl::ReplLogRoot::Class();
    repl::ReplLogSegment::Class();
    nvm::DeviceOptions d;
    d.size_bytes = SmallShard().device_bytes;
    auto dev = std::make_unique<nvm::PmemDevice>(d);
    auto rt = core::JnvmRuntime::Format(dev.get());
    auto log = repl::ReplLog::OpenOrCreate(rt.get(), "server.repl",
                                           repl::ReplLogOptions{});
    log->Append(1, "sealed-record");
    rt->Psync();
    log->BeginInstall();  // the crash window
    rt->Psync();
    ASSERT_TRUE(dev->SaveTo(img));
  }

  CollectSink sink;
  ShardOptions o = SmallShard();
  o.follower = true;
  o.image_base = base;
  auto shard = Shard::Open(o, 0, &sink);
  ASSERT_TRUE(shard->recovered());
  EXPECT_TRUE(shard->repl_needs_snapshot());

  Request snap;
  snap.op = Request::Op::kReplSnap;
  snap.conn_id = 1;
  snap.seq = 1;
  ASSERT_TRUE(shard->Submit(std::move(snap)));
  Request diff;
  diff.op = Request::Op::kReplDiff;
  diff.conn_id = 1;
  diff.seq = 2;
  diff.repl_seq = 1;
  ASSERT_TRUE(shard->Submit(std::move(diff)));
  shard->Quiesce();

  auto got = sink.take();
  ASSERT_EQ(got.size(), 2u);
  for (const Completion& c : got) {
    EXPECT_EQ(c.reply.rfind("-RETRYLATER", 0), 0u) << c.reply;
  }
  EXPECT_EQ(shard->Stats().ckpt.retry_later, 2u);
  shard.reset();
  std::filesystem::remove(img);
}

class ReplE2E : public ::testing::Test {
 protected:
  ServerOptions PrimaryOpts() {
    ServerOptions o;
    o.nshards = 2;
    o.shard = SmallShard();
    return o;
  }
  ServerOptions ReplicaOpts(uint16_t primary_port) {
    ServerOptions o = PrimaryOpts();
    o.replica_of = "127.0.0.1:" + std::to_string(primary_port);
    return o;
  }

  // Polls the replica until every expected key reads back with its expected
  // value (replication is asynchronous; acked-on-primary ⇒ eventually
  // visible on the replica).
  static bool WaitForKeys(Client& c, int n, int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    int next = 0;  // verified prefix — only re-check the first missing key
    while (std::chrono::steady_clock::now() < deadline) {
      while (next < n &&
             c.Get(Key(next)).value_or("") == "val:" + std::to_string(next)) {
        ++next;
      }
      if (next == n) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }
  static std::string Key(int i) { return "rk:" + std::to_string(i); }
};

TEST_F(ReplE2E, LiveSyncPromoteAfterPrimaryDeath) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  const int kN = 200;
  for (int i = 0; i < kN / 2; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
  }

  // Replica joins mid-stream; earlier records are still retained in the
  // primary's (default-sized) logs, so it catches up without a snapshot.
  auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  for (int i = kN / 2; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
  }

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(WaitForKeys(*rc, kN));

  // Writes are rejected while following.
  RespReply r;
  ASSERT_TRUE(rc->Roundtrip({"SET", "nope", "x"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_EQ(r.str.rfind("READONLY", 0), 0u) << r.str;

  // STATS shows the replica role and the pull-client counters.
  const auto stats = rc->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("role=replica"), std::string::npos);
  EXPECT_NE(stats->find("replclient:"), std::string::npos);

  // Primary dies; promote the replica and it becomes writable.
  primary->RequestShutdown();
  primary->Wait();
  ASSERT_TRUE(primary->shutdown_report().ok);

  ASSERT_TRUE(rc->Roundtrip({"PROMOTE"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;
  EXPECT_EQ(r.str, "OK");

  // Every key acked by the dead primary survives, and writes now succeed.
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(rc->Get(Key(i)).value_or("<missing>"), "val:" + std::to_string(i));
  }
  ASSERT_TRUE(rc->Set("after-promote", "yes"));
  EXPECT_EQ(rc->Get("after-promote").value_or("?"), "yes");

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  EXPECT_TRUE(replica->shutdown_report().ok);  // audit clean on ex-follower
}

TEST_F(ReplE2E, SnapshotBootstrapWhenLogTruncated) {
  // Tiny primary logs: by the time the replica joins, record 1 is long
  // truncated and REPLSYNC from 1 must fail over to a REPLSNAP bootstrap.
  ServerOptions popts = PrimaryOpts();
  popts.shard.repl_segment_bytes = 512;
  popts.shard.repl_max_segments = 2;
  std::string err;
  auto primary = Server::Start(popts, &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
  }

  auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(WaitForKeys(*rc, kN));

  ASSERT_NE(replica->repl_client(), nullptr);
  EXPECT_GE(replica->repl_client()->Stats().snapshots_installed, 1u);

  // The stream keeps flowing after the bootstrap.
  ASSERT_TRUE(pc->Set("post-snap", "1"));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!rc->Get("post-snap").has_value() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rc->Get("post-snap").value_or("?"), "1");

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_F(ReplE2E, ReplicaRestartResumesFromSealedSeq) {
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_repl_restart_" + std::to_string(::getpid())))
          .string();
  std::string err;
  auto primary = Server::Start(PrimaryOpts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  ServerOptions ropts = ReplicaOpts(primary->port());
  ropts.shard.image_base = base;

  const int kHalf = 100;
  {
    auto replica = Server::Start(ropts, &err);
    ASSERT_NE(replica, nullptr) << err;
    for (int i = 0; i < kHalf; ++i) {
      ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
    }
    auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
    ASSERT_NE(rc, nullptr) << err;
    ASSERT_TRUE(WaitForKeys(*rc, kHalf));
    ASSERT_TRUE(rc->Shutdown());  // saves follower images
    replica->Wait();
    ASSERT_TRUE(replica->shutdown_report().ok);
  }

  // More writes land while the replica is down.
  for (int i = kHalf; i < 2 * kHalf; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
  }

  {
    auto replica = Server::Start(ropts, &err);  // recovers follower images
    ASSERT_NE(replica, nullptr) << err;
    EXPECT_TRUE(replica->AnyShardRecovered());
    auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
    ASSERT_NE(rc, nullptr) << err;
    ASSERT_TRUE(WaitForKeys(*rc, 2 * kHalf));
    // Catch-up came from the retained stream, not a snapshot: the replica
    // resumed from its recovered sealed seq through the segment-diff
    // handshake (REPLDIFF advertised its digests; the primary verified them
    // and shipped only the tail).
    ASSERT_NE(replica->repl_client(), nullptr);
    EXPECT_EQ(replica->repl_client()->Stats().snapshots_installed, 0u);
    EXPECT_GE(replica->repl_client()->Stats().diff_resyncs, 1u);
    EXPECT_EQ(replica->repl_client()->Stats().diff_rejected, 0u);
    ASSERT_TRUE(rc->Shutdown());
    replica->Wait();
    ASSERT_TRUE(replica->shutdown_report().ok);
  }

  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
  for (uint32_t i = 0; i < ropts.nshards; ++i) {
    std::filesystem::remove(base + ".shard" + std::to_string(i) + ".img");
  }
}

// Sums every occurrence of `field` (e.g. "wait_timeouts=") in a STATS body.
uint64_t SumStatsField(const std::string& stats, const char* field) {
  uint64_t sum = 0;
  size_t pos = 0;
  const size_t n = std::strlen(field);
  while ((pos = stats.find(field, pos)) != std::string::npos) {
    pos += n;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

TEST_F(ReplE2E, CheckpointTruncatesAndBoundsRestartReplay) {
  // The CKPT verb runs the fuzzy per-shard checkpoint: walk accounting over
  // every record, durable [begin,end] pair, sealed segments below begin
  // reclaimed. A restart then replays only the log tail past begin, not the
  // whole history — recovery work tracks the residual log, not the heap.
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_ckpt_e2e_" + std::to_string(::getpid())))
          .string();
  ServerOptions popts = PrimaryOpts();
  popts.shard.image_base = base;
  popts.shard.repl_segment_bytes = 1024;
  popts.shard.repl_max_segments = 24;  // retention alone never truncates here
  std::string err;
  const int kPre = 200, kPost = 40;
  {
    auto primary = Server::Start(popts, &err);
    ASSERT_NE(primary, nullptr) << err;
    auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
    ASSERT_NE(pc, nullptr) << err;
    for (int i = 0; i < kPre; ++i) {
      ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
    }

    RespReply r;
    ASSERT_TRUE(pc->Roundtrip({"CKPT"}, &r));
    ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;
    EXPECT_EQ(r.str.rfind("OK", 0), 0u) << r.str;
    // A second trigger while idle also succeeds (nothing is running).
    ASSERT_TRUE(pc->Roundtrip({"CKPT"}, &r));
    ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;

    const std::string stats = pc->Stats().value_or("");
    EXPECT_EQ(SumStatsField(stats, "walked_keys="), static_cast<uint64_t>(kPre))
        << stats;
    EXPECT_GE(SumStatsField(stats, "truncated_segs="), 1u) << stats;

    // Tail records appended past the checkpoint bound.
    for (int i = kPre; i < kPre + kPost; ++i) {
      ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
    }
    ASSERT_TRUE(pc->Shutdown());  // saves the shard images
    primary->Wait();
    ASSERT_TRUE(primary->shutdown_report().ok);
  }

  auto primary = Server::Start(popts, &err);  // recovers from the images
  ASSERT_NE(primary, nullptr) << err;
  EXPECT_TRUE(primary->AnyShardRecovered());
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  for (int i = 0; i < kPre + kPost; ++i) {
    EXPECT_EQ(pc->Get(Key(i)).value_or("<missing>"),
              "val:" + std::to_string(i));
  }
  // Replay was bounded by the durable checkpoint pair: at most the kPost
  // post-checkpoint records, never the kPre history below begin.
  const std::string stats = pc->Stats().value_or("");
  const uint64_t replayed = SumStatsField(stats, "replayed=");
  EXPECT_GT(replayed, 0u) << stats;
  EXPECT_LE(replayed, static_cast<uint64_t>(kPost)) << stats;
  // The walk accounting survived the restart (meta is durable).
  EXPECT_EQ(SumStatsField(stats, "walked_keys="), static_cast<uint64_t>(kPre))
      << stats;

  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
  for (uint32_t i = 0; i < popts.nshards; ++i) {
    std::filesystem::remove(base + ".shard" + std::to_string(i) + ".img");
  }
}

// ---- WAIT-K synchronous replication -----------------------------------------
// A --wait-acks=K primary parks each write batch between its local Psync
// and its reply until K subscribers have acknowledged (REPLACK) the sealed
// seq; past the timeout the write replies degrade to -WAITTIMEOUT but the
// data stays locally durable. Both pollers drive the ack routing and the
// parked-batch timeout tick, so the suite is parameterized like ServerE2E.

TEST_F(ReplE2E, ApplyBatchDecouplesReplicaGroupCommit) {
  // --apply-batch lets a replica fold many shipped records (each one sealed
  // primary batch) into one local group commit. Primary at batch=1 seals
  // one record per write; a replica joining after the fact drains the whole
  // backlog, so with apply_batch=32 its worker must need far fewer batches
  // than records applied — and converge to the same data.
  ServerOptions popts = PrimaryOpts();
  popts.shard.batch = 1;  // one sealed record per SET
  std::string err;
  auto primary = Server::Start(popts, &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)));
  }

  ServerOptions ropts = ReplicaOpts(primary->port());
  ropts.shard.batch = 1;           // replica's own client-facing batch
  ropts.shard.apply_batch = 32;    // but applies group up to 32 records
  // Slow fences make singleton applies visibly slow, so the pull loop
  // outpaces the worker and the queue depth actually exercises grouping.
  ropts.shard.fence_ns = 100'000;
  auto replica = Server::Start(ropts, &err);
  ASSERT_NE(replica, nullptr) << err;
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(WaitForKeys(*rc, kN));

  const std::string stats = rc->Stats().value_or("");
  const uint64_t applied = SumStatsField(stats, "applied=");
  const uint64_t psyncs = SumStatsField(stats, "psyncs=");
  EXPECT_EQ(applied, static_cast<uint64_t>(kN)) << stats;
  // The backlog drained in grouped applies: one Psync seals a whole group,
  // so far fewer durability points than records. (Without decoupling,
  // batch=1 would Psync once per applied record — ~kN total.)
  EXPECT_LT(psyncs, applied / 4) << stats;
  EXPECT_GT(SumStatsField(stats, "max_batch="), 2u) << stats;  // real groups
  EXPECT_NE(stats.find("apply_batch=32"), std::string::npos) << stats;

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  EXPECT_TRUE(replica->shutdown_report().ok);  // grouped applies audit clean
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

class WaitE2E : public ::testing::TestWithParam<bool> {
 protected:
  ServerOptions PrimaryOpts(uint32_t wait_acks, uint32_t timeout_ms) {
    ServerOptions o;
    o.nshards = 2;
    o.shard = SmallShard();
    o.shard.wait_acks = wait_acks;
    o.shard.wait_timeout_ms = timeout_ms;
    o.force_poll = GetParam();
    return o;
  }
  ServerOptions ReplicaOpts(uint16_t primary_port) {
    ServerOptions o;
    o.nshards = 2;
    o.shard = SmallShard();
    o.force_poll = GetParam();
    o.replica_of = "127.0.0.1:" + std::to_string(primary_port);
    return o;
  }
  // Blocks until `want` REPLSYNC subscriptions are live on the primary, so
  // a K>0 test's first write doesn't race the replica's handshake.
  static void WaitForSubs(Client& pc, uint64_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (SumStatsField(pc.Stats().value_or(""), "subs=") < want) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  static std::string Key(int i) { return "wk:" + std::to_string(i); }
};

TEST_P(WaitE2E, K1AckRoundtripRepliesOkWithoutTimeouts) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(1, /*timeout_ms=*/5000), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  WaitForSubs(*pc, 2);

  const int kN = 50;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)))
        << pc->last_error();
  }
  // +OK under WAIT-1 means the replica acked: acked watermarks advanced and
  // nothing timed out — every reply above waited for real replication.
  const std::string stats = pc->Stats().value_or("");
  EXPECT_EQ(SumStatsField(stats, "wait_timeouts="), 0u) << stats;
  EXPECT_GT(SumStatsField(stats, "acked="), 0u) << stats;
  EXPECT_NE(stats.find("wait_acks=1"), std::string::npos) << stats;

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(rc->Get(Key(i)).value_or("<missing>"),
              "val:" + std::to_string(i));  // acked ⇒ already applied
  }
  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_P(WaitE2E, SoleReplicaDownDegradesToWaitTimeout) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(1, /*timeout_ms=*/200), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  // No replica exists: the write must come back as an explicit
  // -WAITTIMEOUT, never a silent local-only +OK.
  RespReply r;
  ASSERT_TRUE(pc->Roundtrip({"SET", Key(0), "v0"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError) << r.str;
  EXPECT_EQ(r.str.rfind("WAITTIMEOUT", 0), 0u) << r.str;

  // ...but the write is locally durable, reads are unaffected, and the
  // timeout is counted.
  EXPECT_EQ(pc->Get(Key(0)).value_or("<missing>"), "v0");
  EXPECT_TRUE(pc->Ping());
  const std::string stats = pc->Stats().value_or("");
  EXPECT_GE(SumStatsField(stats, "wait_timeouts="), 1u) << stats;

  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
  EXPECT_TRUE(primary->shutdown_report().ok);
}

TEST_P(WaitE2E, ReplicaKilledMidStreamThenNewReplicaRestoresQuorum) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(1, /*timeout_ms=*/200), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  {
    auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
    ASSERT_NE(replica, nullptr) << err;
    WaitForSubs(*pc, 2);
    ASSERT_TRUE(pc->Set(Key(0), "v0")) << pc->last_error();
    auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
    ASSERT_NE(rc, nullptr) << err;
    ASSERT_TRUE(rc->Shutdown());  // replica leaves; its subs unsubscribe
    replica->Wait();
  }

  // Quorum lost: writes degrade (reply is -WAITTIMEOUT, never +OK) but the
  // primary keeps serving and stays responsive. Allow a few +OK-free
  // iterations while the dead subscriber's eviction propagates.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    RespReply r;
    for (int i = 1;; ++i) {
      ASSERT_TRUE(pc->Roundtrip({"SET", Key(i), "vx"}, &r));
      if (r.type == RespReply::Type::kError) {
        EXPECT_EQ(r.str.rfind("WAITTIMEOUT", 0), 0u) << r.str;
        break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "writes kept replying +OK with no live replica";
    }
    EXPECT_TRUE(pc->Ping());
    EXPECT_EQ(pc->Get(Key(0)).value_or("<missing>"), "v0");
  }

  // A fresh replica re-subscribes (its from-seq is an implicit ack
  // watermark) and +OK service resumes.
  auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    if (pc->Set("resumed", "yes")) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "quorum never recovered: " << pc->last_error();
  }

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_P(WaitE2E, EveryWaitAckedKeySurvivesPromotion) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(1, /*timeout_ms=*/5000), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto replica = Server::Start(ReplicaOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  WaitForSubs(*pc, 2);

  // Every +OK below is a WAIT-acked write: the replica has it.
  const int kN = 100;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), "val:" + std::to_string(i)))
        << pc->last_error();
  }

  // Primary dies; no drain grace for the replica — acked is enough.
  primary->RequestShutdown();
  primary->Wait();
  pc.reset();

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  RespReply r;
  ASSERT_TRUE(rc->Roundtrip({"PROMOTE"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;

  // The WAIT contract: acked-before-death ⇒ present after promotion, with
  // no waiting or resync.
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(rc->Get(Key(i)).value_or("<missing>"),
              "val:" + std::to_string(i));
  }
  ASSERT_TRUE(rc->Set("after-promote", "yes"));

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  EXPECT_TRUE(replica->shutdown_report().ok);
}

TEST_P(WaitE2E, PromoteIsAllOrNothingWhenOneShardFailsAudit) {
  std::string err;
  auto primary = Server::Start(PrimaryOpts(0, 1000), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  ServerOptions ropts = ReplicaOpts(primary->port());
  ropts.shard.fail_promote_audit_shard = 1;  // injected audit failure
  auto replica = Server::Start(ropts, &err);
  ASSERT_NE(replica, nullptr) << err;

  // Write one key per shard so both shards' follower state is observable.
  std::string k0, k1;
  for (int i = 0; k0.empty() || k1.empty(); ++i) {
    const std::string k = Key(i);
    (ShardFor(k, 2) == 0 ? k0 : k1) = k;
  }
  ASSERT_TRUE(pc->Set(k0, "a"));
  ASSERT_TRUE(pc->Set(k1, "b"));

  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;

  // PROMOTE must fail (shard 1's audit is rigged to fail)...
  RespReply r;
  ASSERT_TRUE(rc->Roundtrip({"PROMOTE"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError) << r.str;

  // ...and no shard may have flipped: writes to keys on BOTH shards are
  // still rejected. (The one-phase bug flipped shard 0 before shard 1's
  // audit failed, splitting the server into half-primary half-follower.)
  for (const std::string& k : {k0, k1}) {
    RespReply w;
    ASSERT_TRUE(rc->Roundtrip({"SET", k, "x"}, &w)) << k;
    ASSERT_EQ(w.type, RespReply::Type::kError) << k << ": " << w.str;
    EXPECT_EQ(w.str.rfind("READONLY", 0), 0u) << k << ": " << w.str;
  }

  rc->Shutdown();
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

INSTANTIATE_TEST_SUITE_P(Pollers, WaitE2E, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

// ---- Session reads: shard-level parking (MINSEQ gate, DESIGN.md §8) ---------
// Direct-shard tests drive GateSessionRead/TickReadStale from the test
// thread (playing the event loop) while kApply records advance the applied
// watermark on the worker thread — the exact division of labor in the
// server.

std::string PutRecord(uint64_t seq, const std::string& key,
                      const std::string& value) {
  repl::ReplOp op;
  op.kind = repl::ReplOp::Kind::kPut;
  op.key = key;
  op.record.fields.push_back(value);
  std::string batch, rec;
  repl::EncodeBatch({op}, &batch);
  repl::EncodeRecord(seq, batch, &rec);
  return rec;
}

std::string Bulk(const std::string& v) {
  return "$" + std::to_string(v.size()) + "\r\n" + v + "\r\n";
}

class SessionShard : public ::testing::Test {
 protected:
  std::unique_ptr<Shard> OpenFollower(ShardOptions o) {
    o.follower = true;
    return Shard::Open(o, 0, &sink_);
  }

  void Apply(Shard& sh, uint64_t seq, const std::string& key,
             const std::string& value) {
    Request r;
    r.op = Request::Op::kApply;
    r.value = PutRecord(seq, key, value);
    ASSERT_TRUE(sh.Submit(std::move(r)));
  }

  static void WaitSealed(Shard& sh, uint64_t seq) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sh.repl_next_seq() < seq + 1) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  static Request Read(const std::string& key, uint64_t min_seq, uint64_t conn,
                      uint64_t seq) {
    Request r;
    r.op = Request::Op::kGet;
    r.key = key;
    r.conn_id = conn;
    r.seq = seq;
    r.min_seq = min_seq;
    return r;
  }

  // Parked completions arrive from the worker thread; poll until n landed.
  std::vector<Completion>& WaitCompletions(size_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (got_.size() < n &&
           std::chrono::steady_clock::now() < deadline) {
      for (Completion& c : sink_.take()) {
        got_.push_back(std::move(c));
      }
      if (got_.size() < n) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    EXPECT_GE(got_.size(), n);
    return got_;
  }

  CollectSink sink_;
  std::vector<Completion> got_;
};

TEST_F(SessionShard, MinSeqSatisfiedAtExactBoundary) {
  auto sh = OpenFollower(SmallShard());
  Apply(*sh, 1, "k", "v1");
  WaitSealed(*sh, 1);

  // Token == watermark: the boundary is inclusive — no park, no stale.
  Request r = Read("k", /*min_seq=*/1, /*conn=*/1, /*seq=*/1);
  EXPECT_EQ(sh->GateSessionRead(r, /*now_ms=*/0), Shard::ReadGate::kReady);
  ASSERT_TRUE(sh->Submit(std::move(r)));
  auto& got = WaitCompletions(1);
  EXPECT_EQ(got[0].reply, Bulk("v1"));

  // Token == watermark + 1 parks, and the apply that lands exactly on the
  // token releases it with the new value.
  Request r2 = Read("k", 2, 1, 2);
  EXPECT_EQ(sh->GateSessionRead(r2, 0), Shard::ReadGate::kParked);
  EXPECT_EQ(sh->Stats().repl.parked_reads, 1u);
  Apply(*sh, 2, "k", "v2");
  WaitCompletions(2);
  EXPECT_EQ(got[1].reply, Bulk("v2"));
  EXPECT_EQ(sh->Stats().repl.released_reads, 1u);
  EXPECT_EQ(sh->Stats().repl.stale_reads, 0u);
  EXPECT_TRUE(sh->Quiesce().integrity_ok);
}

TEST_F(SessionShard, OneApplyReleasesParkedReadersInParkOrder) {
  auto sh = OpenFollower(SmallShard());
  Apply(*sh, 1, "k", "v1");
  WaitSealed(*sh, 1);

  for (uint64_t conn = 1; conn <= 3; ++conn) {
    Request r = Read("k", /*min_seq=*/2, conn, /*seq=*/conn);
    ASSERT_EQ(sh->GateSessionRead(r, 0), Shard::ReadGate::kParked) << conn;
  }
  EXPECT_EQ(sh->Stats().repl.parked_reads, 3u);

  // One watermark advance releases all three, in park order, all with the
  // post-advance value.
  Apply(*sh, 2, "k", "v2");
  auto& got = WaitCompletions(3);
  ASSERT_EQ(got.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].conn_id, i + 1) << "release order broke park order";
    EXPECT_EQ(got[i].reply, Bulk("v2"));
  }
  EXPECT_EQ(sh->Stats().repl.released_reads, 3u);
  EXPECT_EQ(sh->Stats().repl.parked_reads, 0u);
  EXPECT_TRUE(sh->Quiesce().integrity_ok);
}

TEST_F(SessionShard, ParkBoundOverflowAndDeadlineAnswerStale) {
  ShardOptions o = SmallShard();
  o.read_park_max = 2;
  o.read_stale_timeout_ms = 100;
  auto sh = OpenFollower(o);
  Apply(*sh, 1, "k", "v1");
  WaitSealed(*sh, 1);

  Request a = Read("k", 5, 1, 1);
  Request b = Read("k", 5, 2, 2);
  ASSERT_EQ(sh->GateSessionRead(a, /*now_ms=*/1000), Shard::ReadGate::kParked);
  ASSERT_EQ(sh->GateSessionRead(b, 1000), Shard::ReadGate::kParked);

  // The third read overflows the bound: -STALE immediately, never silence.
  Request c = Read("k", 5, 3, 3);
  ASSERT_EQ(sh->GateSessionRead(c, 1000), Shard::ReadGate::kStale);
  auto& got = WaitCompletions(1);
  EXPECT_EQ(got[0].conn_id, 3u);
  EXPECT_EQ(got[0].reply.rfind("-STALE", 0), 0u) << got[0].reply;

  // Before the deadline the tick is a no-op; past it both parked reads
  // expire (still uncovered: the watermark never reached 5).
  sh->TickReadStale(1000 + o.read_stale_timeout_ms - 1);
  EXPECT_EQ(sh->Stats().repl.parked_reads, 2u);
  sh->TickReadStale(1000 + o.read_stale_timeout_ms);
  WaitCompletions(3);
  EXPECT_EQ(got[1].conn_id, 1u);
  EXPECT_EQ(got[2].conn_id, 2u);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(got[i].reply.rfind("-STALE", 0), 0u) << got[i].reply;
  }
  EXPECT_EQ(sh->Stats().repl.stale_reads, 3u);
  EXPECT_EQ(sh->Stats().repl.released_reads, 0u);
  EXPECT_TRUE(sh->Quiesce().integrity_ok);
}

TEST_F(SessionShard, ApplyStreamFlowsPastParkedReads) {
  // Regression: parked reads live OUTSIDE the worker queue. A read waiting
  // for a future watermark must never delay, reorder, or starve the kApply
  // stream — the original design bug (parking the read IN the queue) would
  // deadlock right here, with the releasing apply stuck behind the read.
  auto sh = OpenFollower(SmallShard());
  Apply(*sh, 1, "k", "v1");
  WaitSealed(*sh, 1);

  Request mid = Read("k", /*min_seq=*/5, /*conn=*/1, /*seq=*/1);
  ASSERT_EQ(sh->GateSessionRead(mid, 0), Shard::ReadGate::kParked);
  Request never = Read("k", /*min_seq=*/1000, /*conn=*/2, /*seq=*/2);
  ASSERT_EQ(sh->GateSessionRead(never, 0), Shard::ReadGate::kParked);

  // The full apply stream lands while both reads are parked.
  for (uint64_t s = 2; s <= 10; ++s) {
    Apply(*sh, s, "k", "v" + std::to_string(s));
  }
  WaitSealed(*sh, 10);
  EXPECT_EQ(sh->repl_next_seq(), 11u);

  // The mid read released at the first batch covering seq 5: its value is
  // v5..v10 — at or past its token, never older.
  auto& got = WaitCompletions(1);
  EXPECT_EQ(got[0].conn_id, 1u);
  uint64_t version = 0;
  ASSERT_EQ(std::sscanf(got[0].reply.c_str(), "$%*d\r\nv%llu",
                        reinterpret_cast<unsigned long long*>(&version)),
            1)
      << got[0].reply;
  EXPECT_GE(version, 5u) << got[0].reply;
  EXPECT_LE(version, 10u) << got[0].reply;

  // Applies were not reordered or dropped around the parked reads: the
  // store's final state is the full prefix.
  Request tail = Read("k", 10, 3, 3);
  EXPECT_EQ(sh->GateSessionRead(tail, 0), Shard::ReadGate::kReady);
  ASSERT_TRUE(sh->Submit(std::move(tail)));
  WaitCompletions(2);
  EXPECT_EQ(got[1].reply, Bulk("v10"));

  // Quiesce force-stales the unsatisfiable read instead of hanging.
  EXPECT_TRUE(sh->Quiesce().integrity_ok);
  WaitCompletions(3);
  EXPECT_EQ(got[2].conn_id, 2u);
  EXPECT_EQ(got[2].reply.rfind("-STALE", 0), 0u) << got[2].reply;
}

// ---- Session reads + chained (tree) replication e2e -------------------------
// Both pollers drive the MINSEQ dispatch, the read-stale tick, and the
// chained REPLSYNC serving, so the suite is parameterized like WaitE2E.

class SessionE2E : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr uint32_t kShards = 2;

  ServerOptions Opts() {
    ServerOptions o;
    o.nshards = kShards;
    o.shard = SmallShard();
    o.force_poll = GetParam();
    return o;
  }
  ServerOptions FollowerOpts(uint16_t upstream_port) {
    ServerOptions o = Opts();
    o.replica_of = "127.0.0.1:" + std::to_string(upstream_port);
    return o;
  }
  static std::string Key(int i) { return "sk:" + std::to_string(i); }
  static std::string Val(int i) { return "val:" + std::to_string(i); }

  // Raises the replica connection's tokens to the primary's current sealed
  // watermarks — after this, session reads must observe every write the
  // primary has acked so far, or answer -STALE. Never a silent old value.
  static void RaiseTokens(Client& pc, Client& rc) {
    for (uint32_t s = 0; s < kShards; ++s) {
      const auto tok = pc.LastSeq(s);
      ASSERT_TRUE(tok.has_value()) << pc.last_error();
      ASSERT_TRUE(rc.MinSeq(s, *tok)) << rc.last_error();
    }
  }
};

TEST_P(SessionE2E, ReadYourWritesAcrossConnections) {
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto replica = Server::Start(FollowerOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;

  // No polling loop anywhere: each round writes through the primary, raises
  // the session tokens, and the replica read must return the fresh value on
  // the FIRST attempt — parking bridges the replication lag.
  const int kN = 60;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), Val(i))) << pc->last_error();
    RaiseTokens(*pc, *rc);
    EXPECT_EQ(rc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }

  // The tokens raised the released/parked counters, never the stale one.
  const std::string stats = rc->Stats().value_or("");
  EXPECT_EQ(SumStatsField(stats, "stale_reads="), 0u) << stats;

  // LASTSEQ on a log-less shard config and MINSEQ arg validation.
  RespReply r;
  const std::vector<std::vector<std::string>> bad = {
      {"MINSEQ"},           // missing args
      {"MINSEQ", "0"},      // missing seq
      {"MINSEQ", "9", "1"},  // shard out of range
      {"MINSEQ", "x", "1"},  // non-numeric shard
      {"MINSEQ", "0", "x"},  // non-numeric seq
      {"LASTSEQ"},          // missing shard
      {"LASTSEQ", "9"},     // shard out of range
  };
  for (const auto& args : bad) {
    ASSERT_TRUE(rc->Roundtrip(args, &r)) << args[0];
    EXPECT_EQ(r.type, RespReply::Type::kError) << args[0];
  }

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_P(SessionE2E, StalledReplicaAnswersStaleNeverOldValues) {
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  ServerOptions ropts = FollowerOpts(primary->port());
  ropts.shard.read_stale_timeout_ms = 100;  // fast explicit failure
  auto replica = Server::Start(ropts, &err);
  ASSERT_NE(replica, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;
  ASSERT_TRUE(pc->Set(Key(0), Val(0)));

  // A token far past anything the stalled stream will deliver: the read
  // parks for read_stale_timeout_ms, then fails EXPLICITLY.
  const uint32_t s = ShardFor(Key(0), kShards);
  ASSERT_TRUE(rc->MinSeq(s, 1u << 30));
  const auto t0 = std::chrono::steady_clock::now();
  RespReply r;
  ASSERT_TRUE(rc->Roundtrip({"GET", Key(0)}, &r));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_EQ(r.type, RespReply::Type::kError) << r.str;
  EXPECT_EQ(r.str.rfind("STALE", 0), 0u) << r.str;
  EXPECT_GE(waited.count(), 90) << "answered before the park deadline";

  const std::string stats = rc->Stats().value_or("");
  EXPECT_GE(SumStatsField(stats, "stale_reads="), 1u) << stats;

  // The connection survives -STALE (tokens are monotone per connection, so
  // this one keeps its floor), and other sessions are unaffected: a fresh
  // connection with no token reads normally.
  EXPECT_TRUE(rc->Ping());
  auto rc2 = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc2, nullptr) << err;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!rc2->Get(Key(0)).has_value()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_P(SessionE2E, ChainedTreeConvergesAndServesSessionReads) {
  // primary → r1 → r2: r1 serves REPLSYNC downstream from its own log
  // (byte-identical to the primary's sealed prefix), and session tokens
  // taken on the PRIMARY are valid on the leaf — seqs are global.
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto r1 = Server::Start(FollowerOpts(primary->port()), &err);
  ASSERT_NE(r1, nullptr) << err;
  ServerOptions leaf_opts = FollowerOpts(r1->port());
  leaf_opts.shard.read_stale_timeout_ms = 10'000;  // two hops of lag to bridge
  auto r2 = Server::Start(leaf_opts, &err);
  ASSERT_NE(r2, nullptr) << err;

  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  auto lc = Client::Connect("127.0.0.1", r2->port(), &err);
  ASSERT_NE(lc, nullptr) << err;

  const int kN = 100;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), Val(i))) << pc->last_error();
  }
  RaiseTokens(*pc, *lc);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(lc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }

  // The leaf never contacted the primary: its stream came through r1, whose
  // stats show downstream subscribers; no gap teardowns fired on the leaf.
  auto r1c = Client::Connect("127.0.0.1", r1->port(), &err);
  ASSERT_NE(r1c, nullptr) << err;
  const std::string mid_stats = r1c->Stats().value_or("");
  EXPECT_GE(SumStatsField(mid_stats, "subs="), 1u) << mid_stats;
  const std::string leaf_stats = lc->Stats().value_or("");
  EXPECT_EQ(SumStatsField(leaf_stats, "gap_resyncs="), 0u) << leaf_stats;
  EXPECT_EQ(SumStatsField(leaf_stats, "stale_reads="), 0u) << leaf_stats;

  ASSERT_TRUE(lc->Shutdown());
  r2->Wait();
  ASSERT_TRUE(r1c->Shutdown());
  r1->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

TEST_P(SessionE2E, MiddleDeathLeafResyncsFromPrimaryWithoutSnapshot) {
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_session_mid_" + std::to_string(::getpid()) +
        (GetParam() ? "_poll" : "_epoll")))
          .string();
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;

  auto r1 = Server::Start(FollowerOpts(primary->port()), &err);
  ASSERT_NE(r1, nullptr) << err;

  const int kHalf = 50;
  ServerOptions leaf_opts = FollowerOpts(r1->port());
  leaf_opts.shard.image_base = base;
  {
    auto r2 = Server::Start(leaf_opts, &err);
    ASSERT_NE(r2, nullptr) << err;
    for (int i = 0; i < kHalf; ++i) {
      ASSERT_TRUE(pc->Set(Key(i), Val(i)));
    }
    auto lc = Client::Connect("127.0.0.1", r2->port(), &err);
    ASSERT_NE(lc, nullptr) << err;
    RaiseTokens(*pc, *lc);
    for (int i = 0; i < kHalf; ++i) {
      ASSERT_EQ(lc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
    }
    ASSERT_TRUE(lc->Shutdown());  // leaf leaves, saving follower images
    r2->Wait();
    ASSERT_TRUE(r2->shutdown_report().ok);
  }

  // The middle tier dies; more writes land at the primary meanwhile.
  r1->RequestShutdown();
  r1->Wait();
  r1.reset();
  for (int i = kHalf; i < 2 * kHalf; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), Val(i)));
  }

  // The leaf re-homes onto the primary, recovering its images. Because a
  // follower's log is byte-identical to the upstream's sealed prefix —
  // primary seqs, primary bytes — the leaf's REPLSYNC from its own sealed
  // boundary lines up with the primary's log directly: catch-up must come
  // from the retained stream, not a snapshot.
  ServerOptions rehome = FollowerOpts(primary->port());
  rehome.shard.image_base = base;
  auto r2 = Server::Start(rehome, &err);
  ASSERT_NE(r2, nullptr) << err;
  EXPECT_TRUE(r2->AnyShardRecovered());
  auto lc = Client::Connect("127.0.0.1", r2->port(), &err);
  ASSERT_NE(lc, nullptr) << err;
  RaiseTokens(*pc, *lc);
  for (int i = 0; i < 2 * kHalf; ++i) {
    EXPECT_EQ(lc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }
  ASSERT_NE(r2->repl_client(), nullptr);
  EXPECT_EQ(r2->repl_client()->Stats().snapshots_installed, 0u);

  ASSERT_TRUE(lc->Shutdown());
  r2->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
  for (uint32_t i = 0; i < kShards; ++i) {
    std::filesystem::remove(base + ".shard" + std::to_string(i) + ".img");
  }
}

TEST_P(SessionE2E, MidTreePromoteKeepsAckedKeysReadable) {
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto r1 = Server::Start(FollowerOpts(primary->port()), &err);
  ASSERT_NE(r1, nullptr) << err;
  auto r2 = Server::Start(FollowerOpts(r1->port()), &err);
  ASSERT_NE(r2, nullptr) << err;

  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  auto mc = Client::Connect("127.0.0.1", r1->port(), &err);
  ASSERT_NE(mc, nullptr) << err;

  // Acked writes, then session-verify they reached the mid tier before the
  // primary dies (tokens make "reached" precise — no sleeps).
  const int kN = 80;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(pc->Set(Key(i), Val(i)));
  }
  RaiseTokens(*pc, *mc);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(mc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }

  primary->RequestShutdown();
  primary->Wait();
  pc.reset();

  // Promote the mid tier: every session-verified key stays readable, the
  // ex-follower becomes writable, and the leaf keeps following it — the
  // subtree survives the root's death intact.
  RespReply r;
  ASSERT_TRUE(mc->Roundtrip({"PROMOTE"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(mc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }
  ASSERT_TRUE(mc->Set("after-promote", "yes"));

  // The leaf picks the new write up through its unchanged upstream, and
  // session reads against the NEW primary's tokens keep working on it.
  auto lc = Client::Connect("127.0.0.1", r2->port(), &err);
  ASSERT_NE(lc, nullptr) << err;
  RaiseTokens(*mc, *lc);
  EXPECT_EQ(lc->Get("after-promote").value_or("<missing>"), "yes");
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(lc->Get(Key(i)).value_or("<missing>"), Val(i)) << i;
  }

  ASSERT_TRUE(lc->Shutdown());
  r2->Wait();
  ASSERT_TRUE(mc->Shutdown());
  r1->Wait();
  EXPECT_TRUE(r1->shutdown_report().ok);
}

// A cross-shard MULTI/EXEC is atomic for session readers on a replica: the
// per-shard streams apply independently, but once the session tokens cover
// the primary's post-EXEC watermarks (the decision on the coordinator, the
// commit marker on the other participant), BOTH reads must return the txn's
// values — never one new and one old, and never a silent stale value.
TEST_P(SessionE2E, CrossShardTxnAtomicUnderSessionReads) {
  std::string err;
  auto primary = Server::Start(Opts(), &err);
  ASSERT_NE(primary, nullptr) << err;
  auto replica = Server::Start(FollowerOpts(primary->port()), &err);
  ASSERT_NE(replica, nullptr) << err;
  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  ASSERT_NE(pc, nullptr) << err;
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  ASSERT_NE(rc, nullptr) << err;

  // One key pinned to each shard.
  const auto key_on = [](uint32_t shard) {
    for (int i = 0;; ++i) {
      std::string k = "txk:" + std::to_string(i);
      if (ShardFor(k, kShards) == shard) {
        return k;
      }
    }
  };
  const std::string k0 = key_on(0);
  const std::string k1 = key_on(1);

  // No polling loop: by EXEC-reply time the commit marker for the
  // non-coordinator shard is enqueued ahead of the LASTSEQ probes, so the
  // raised tokens cover the whole txn and the first read attempt must
  // already observe both writes.
  const int kRounds = 30;
  for (int round = 0; round < kRounds; ++round) {
    const std::string v = "round:" + std::to_string(round);
    ASSERT_TRUE(pc->Multi()) << pc->last_error();
    RespReply q;
    ASSERT_TRUE(pc->Roundtrip({"SET", k0, v}, &q));
    ASSERT_TRUE(pc->Roundtrip({"SET", k1, v}, &q));
    std::vector<RespReply> replies;
    ASSERT_TRUE(pc->Exec(&replies)) << pc->last_error();
    ASSERT_EQ(replies.size(), 2u);
    RaiseTokens(*pc, *rc);
    EXPECT_EQ(rc->Get(k0).value_or("<missing>"), v) << "round " << round;
    EXPECT_EQ(rc->Get(k1).value_or("<missing>"), v) << "round " << round;
  }
  const std::string stats = rc->Stats().value_or("");
  EXPECT_EQ(SumStatsField(stats, "stale_reads="), 0u) << stats;

  ASSERT_TRUE(rc->Shutdown());
  replica->Wait();
  ASSERT_TRUE(pc->Shutdown());
  primary->Wait();
}

INSTANTIATE_TEST_SUITE_P(Pollers, SessionE2E, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

TEST(ReplCommands, ArgumentValidation) {
  ServerOptions o;
  o.nshards = 2;
  o.shard = SmallShard();
  std::string err;
  auto server = Server::Start(o, &err);
  ASSERT_NE(server, nullptr) << err;
  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  ASSERT_NE(c, nullptr) << err;

  const std::vector<std::vector<std::string>> bad = {
      {"REPLSYNC"},                 // missing args
      {"REPLSYNC", "0"},            // missing from-seq
      {"REPLSYNC", "9", "1"},       // shard out of range
      {"REPLSYNC", "x", "1"},       // non-numeric shard
      {"REPLSYNC", "0", "0"},       // from-seq must be ≥ 1
      {"REPLSYNC", "0", "abc"},     // non-numeric from-seq
      {"REPLSNAP"},                 // missing shard
      {"REPLSNAP", "2"},            // shard out of range
      {"REPLDIFF"},                 // missing args
      {"REPLDIFF", "0", "2"},       // missing digest frame
      {"REPLDIFF", "9", "2", ""},   // shard out of range
      {"REPLDIFF", "0", "0", ""},   // from-seq must be ≥ 1
      {"PROMOTE", "extra"},         // PROMOTE takes no args
      {"CKPT", "extra"},            // CKPT takes no args
  };
  for (const auto& args : bad) {
    RespReply r;
    ASSERT_TRUE(c->Roundtrip(args, &r)) << args[0];
    EXPECT_EQ(r.type, RespReply::Type::kError) << args[0];
  }

  // PROMOTE on a primary is a no-op audit: already writable.
  RespReply r;
  ASSERT_TRUE(c->Roundtrip({"PROMOTE"}, &r));
  EXPECT_EQ(r.type, RespReply::Type::kSimple) << r.str;

  // A valid REPLSNAP round-trips a decodable snapshot frame.
  ASSERT_TRUE(c->Set("snapkey", "snapval"));
  ASSERT_TRUE(c->Roundtrip({"REPLSNAP", "0"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kBulk) << r.str;
  uint64_t snap_seq = 0;
  std::vector<repl::SnapshotEntry> entries;
  EXPECT_TRUE(repl::DecodeSnapshot(r.str, &snap_seq, &entries));

  ASSERT_TRUE(c->Shutdown());
  server->Wait();
}

}  // namespace
}  // namespace jnvm::server
