// Unit tests for the persistent heap: block header codec (Table 2), the
// allocator, chains, free queue, and block-scan recovery.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/heap/heap.h"

namespace jnvm::heap {
namespace {

std::unique_ptr<nvm::PmemDevice> NewDevice(size_t bytes = 4 << 20, bool strict = false) {
  nvm::DeviceOptions o;
  o.size_bytes = bytes;
  o.strict = strict;
  return std::make_unique<nvm::PmemDevice>(o);
}

// ---- Block header (Table 2) -------------------------------------------------

TEST(BlockHeader, PackUnpackRoundTrip) {
  BlockHeader h;
  h.id = 1234;
  h.valid = true;
  h.next = 0x123456789abcull;
  const BlockHeader u = BlockHeader::Unpack(h.Pack());
  EXPECT_EQ(u.id, 1234);
  EXPECT_TRUE(u.valid);
  EXPECT_EQ(u.next, 0x123456789abcull);
}

TEST(BlockHeader, Table2States) {
  // id != 0, valid any -> master (valid or invalid object).
  BlockHeader valid_master{.id = 5, .valid = true, .next = 0};
  EXPECT_TRUE(valid_master.IsMaster());
  BlockHeader invalid_master{.id = 5, .valid = false, .next = 0};
  EXPECT_TRUE(invalid_master.IsMaster());
  // id == 0, valid == 0 -> free or slave.
  BlockHeader slave{.id = 0, .valid = false, .next = 42};
  EXPECT_FALSE(slave.IsMaster());
  BlockHeader free_block{.id = 0, .valid = false, .next = 0};
  EXPECT_FALSE(free_block.IsMaster());
}

TEST(BlockHeader, FieldWidths) {
  BlockHeader h;
  h.id = kMaxClassId;  // 15 bits
  h.valid = true;
  h.next = kNextMask;  // 48 bits
  const BlockHeader u = BlockHeader::Unpack(h.Pack());
  EXPECT_EQ(u.id, kMaxClassId);
  EXPECT_TRUE(u.valid);
  EXPECT_EQ(u.next, kNextMask);
}

TEST(BlockHeader, ZeroWordIsFree) {
  const BlockHeader h = BlockHeader::Unpack(0);
  EXPECT_FALSE(h.IsMaster());
  EXPECT_FALSE(h.valid);
  EXPECT_EQ(h.next, 0u);
}

// ---- Format / open ----------------------------------------------------------

TEST(Heap, FormatAndReopen) {
  auto dev = NewDevice();
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    EXPECT_EQ(h->block_size(), 256u);
    EXPECT_EQ(h->payload_per_block(), 248u);
    h->CloseClean();
  }
  auto h = Heap::Open(dev.get());
  EXPECT_TRUE(h->was_clean_shutdown());
  EXPECT_EQ(h->block_size(), 256u);
}

TEST(Heap, DirtyFlagDetectsCrash) {
  auto dev = NewDevice();
  { auto h = Heap::Format(dev.get(), HeapOptions{}); }  // no CloseClean
  auto h = Heap::Open(dev.get());
  EXPECT_FALSE(h->was_clean_shutdown());
}

TEST(Heap, FirstBlockAlignedAfterMetadata) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  EXPECT_EQ(h->first_block() % h->block_size(), 0u);
  EXPECT_GT(h->first_block(), h->log_dir_off());
}

// ---- Class table ------------------------------------------------------------

TEST(Heap, ClassIdsStableAcrossReopen) {
  auto dev = NewDevice();
  uint16_t id_a;
  uint16_t id_b;
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    id_a = h->InternClassId("ClassA");
    id_b = h->InternClassId("ClassB");
    EXPECT_NE(id_a, id_b);
    EXPECT_EQ(h->InternClassId("ClassA"), id_a);  // idempotent
    h->CloseClean();
  }
  auto h = Heap::Open(dev.get());
  EXPECT_EQ(h->InternClassId("ClassA"), id_a);
  EXPECT_EQ(h->InternClassId("ClassB"), id_b);
  EXPECT_EQ(h->ClassName(id_a), "ClassA");
  EXPECT_EQ(h->ClassName(id_b), "ClassB");
}

TEST(Heap, UnknownClassNameEmpty) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  EXPECT_EQ(h->ClassName(200), "");
  EXPECT_EQ(h->ClassName(0), "");
}

// ---- Allocation -------------------------------------------------------------

TEST(Heap, AllocSingleBlockObject) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  const Offset m = h->AllocObject(id, 100);
  ASSERT_NE(m, 0u);
  const BlockHeader hdr = h->ReadHeader(m);
  EXPECT_EQ(hdr.id, id);
  EXPECT_FALSE(hdr.valid);  // allocated invalid (§3.2.3)
  EXPECT_EQ(hdr.next, 0u);
  EXPECT_EQ(h->ChainLength(m), 1u);
}

TEST(Heap, AllocChainsLargeObjects) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("Big");
  const Offset m = h->AllocObject(id, 1000);  // needs ceil(1000/248) = 5 blocks
  ASSERT_NE(m, 0u);
  EXPECT_EQ(h->ChainLength(m), 5u);
  std::vector<Offset> blocks;
  h->CollectBlocks(m, &blocks);
  // Slave headers: id = 0, valid = 0.
  for (size_t i = 1; i < blocks.size(); ++i) {
    const BlockHeader s = h->ReadHeader(blocks[i]);
    EXPECT_EQ(s.id, 0);
    EXPECT_FALSE(s.valid);
  }
}

TEST(Heap, PayloadZeroedOnAlloc) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  // Dirty a block, free it, then check a fresh allocation reads zero.
  const Offset m1 = h->AllocObject(id, 100);
  h->dev().Write<uint64_t>(h->PayloadOf(m1), 0xffffffffffffffffull);
  h->FreeObject(m1);
  const Offset m2 = h->AllocObject(id, 100);
  EXPECT_EQ(h->dev().Read<uint64_t>(h->PayloadOf(m2)), 0u);
}

TEST(Heap, FreeRecyclesBlocks) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  const Offset m = h->AllocObject(id, 600);
  std::vector<Offset> blocks;
  h->CollectBlocks(m, &blocks);
  const Offset bump_before = h->bump();
  h->FreeObject(m);
  // New allocations reuse the freed blocks: the bump must not move.
  const Offset m2 = h->AllocObject(id, 600);
  std::vector<Offset> blocks2;
  h->CollectBlocks(m2, &blocks2);
  EXPECT_EQ(h->bump(), bump_before);
  std::set<Offset> set1(blocks.begin(), blocks.end());
  for (const Offset b : blocks2) {
    EXPECT_TRUE(set1.count(b) == 1);
  }
}

TEST(Heap, FreeMarksInvalid) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  const Offset m = h->AllocObject(id, 10);
  h->SetValid(m);
  EXPECT_TRUE(h->IsValid(m));
  h->FreeObject(m);
  EXPECT_FALSE(h->IsValid(m));
}

TEST(Heap, AllocReturnsZeroWhenFull) {
  auto dev = NewDevice(64 * 1024);
  auto h = Heap::Format(dev.get(), HeapOptions{.log_slot_count = 2, .log_slot_bytes = 4096});
  const uint16_t id = h->InternClassId("X");
  Offset m = 1;
  int count = 0;
  while ((m = h->AllocObject(id, 100)) != 0) {
    ++count;
  }
  EXPECT_GT(count, 0);
  EXPECT_EQ(h->AllocObject(id, 100), 0u);
}

TEST(Heap, ValidateSetsBitWithoutTouchingIdOrNext) {
  auto dev = NewDevice();
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  const Offset m = h->AllocObject(id, 500);
  const BlockHeader before = h->ReadHeader(m);
  h->SetValid(m);
  const BlockHeader after = h->ReadHeader(m);
  EXPECT_TRUE(after.valid);
  EXPECT_EQ(after.id, before.id);
  EXPECT_EQ(after.next, before.next);
}

TEST(Heap, BumpPersistedAcrossReopen) {
  auto dev = NewDevice();
  Offset bump;
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    const uint16_t id = h->InternClassId("X");
    for (int i = 0; i < 10; ++i) {
      h->AllocObject(id, 100);
    }
    h->Pfence();
    bump = h->bump();
    h->CloseClean();
  }
  auto h = Heap::Open(dev.get());
  EXPECT_EQ(h->bump(), bump);
}

// ---- Concurrency ------------------------------------------------------------

TEST(Heap, ConcurrentAllocDistinctBlocks) {
  auto dev = NewDevice(8 << 20);
  auto h = Heap::Format(dev.get(), HeapOptions{});
  const uint16_t id = h->InternClassId("X");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::vector<Offset>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(h->AllocObject(id, 100));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<Offset> all;
  for (const auto& v : results) {
    for (const Offset m : v) {
      ASSERT_NE(m, 0u);
      EXPECT_TRUE(all.insert(m).second) << "duplicate allocation";
    }
  }
}

// ---- Block-scan recovery ------------------------------------------------------

TEST(Heap, BlockScanKeepsValidFreesInvalid) {
  auto dev = NewDevice();
  Offset valid_m;
  Offset invalid_m;
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    const uint16_t id = h->InternClassId("X");
    valid_m = h->AllocObject(id, 600);
    invalid_m = h->AllocObject(id, 600);
    h->SetValid(valid_m);
    h->Psync();
    // crash (no clean close)
  }
  auto h = Heap::Open(dev.get());
  const auto stats = h->RecoverBlockScan();
  EXPECT_EQ(stats.live_blocks, 3u);   // the valid object's chain
  EXPECT_GE(stats.freed_blocks, 3u);  // the invalid object's chain
  EXPECT_TRUE(h->ReadHeader(valid_m).valid);
  EXPECT_EQ(h->ReadHeader(invalid_m).Pack(), 0u);  // header voided
}

TEST(Heap, BlockScanRebuildsFreeQueue) {
  auto dev = NewDevice();
  {
    auto h = Heap::Format(dev.get(), HeapOptions{});
    const uint16_t id = h->InternClassId("X");
    for (int i = 0; i < 20; ++i) {
      h->AllocObject(id, 100);  // all invalid -> all free after recovery
    }
    h->Psync();
  }
  auto h = Heap::Open(dev.get());
  h->RecoverBlockScan();
  const Offset bump_before = h->bump();
  const uint16_t id = h->InternClassId("X");
  for (int i = 0; i < 20; ++i) {
    ASSERT_NE(h->AllocObject(id, 100), 0u);
  }
  EXPECT_EQ(h->bump(), bump_before);  // reused recovered blocks
}

}  // namespace
}  // namespace jnvm::heap
