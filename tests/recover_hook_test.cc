// Tests for the PObject.recover() mechanism (§3.2.1): "If an object does
// not use failure-atomic blocks, it can be in an inconsistent state at
// recovery. To prevent such a situation, the developer needs to override
// the recover() method. At recovery, before the application resumes, this
// method is called for each live object encountered during the collection
// pass."
//
// The example class here is a low-level append-only journal: `used` counts
// initialized cells, each cell carries a parity stamp. Without
// failure-atomic blocks a crash can persist `used` ahead of the cells (or
// vice versa); recover() truncates `used` back to the last consistent cell.
#include <gtest/gtest.h>

#include <atomic>

#include "src/core/integrity.h"
#include "src/core/runtime.h"

namespace jnvm::core {
namespace {

std::atomic<int> g_recover_calls{0};

class Journal final : public PObject {
 public:
  static constexpr uint64_t kCells = 24;
  static constexpr size_t kUsedOff = 0;
  static constexpr size_t kCellsOff = 8;

  static const ClassInfo* Class() {
    static const ClassInfo* info = [] {
      ClassInfo ci = MakeClassInfo<Journal>("hook.Journal");
      ci.recover = &Journal::RecoverHook;  // the §3.2.1 hook
      return RegisterClass(std::move(ci));
    }();
    return info;
  }

  explicit Journal(Resurrect) {}
  explicit Journal(JnvmRuntime& rt) {
    AllocatePersistent(rt, Class(), kCellsOff + kCells * 8);
  }

  static uint64_t Stamp(uint64_t value) { return (value << 8) | (value % 251); }
  static bool StampOk(uint64_t cell) {
    // A voided (rolled-back) cell is zero — never a valid stamp.
    return cell != 0 && ((cell >> 8) % 251) == (cell & 0xff);
  }

  // Low-level append: cell first (pwb), fence, then bump `used`. Crashing
  // between the two leaves a cell without a count — or, if the caller skips
  // the fence, a count without a durable cell. recover() repairs both.
  void Append(uint64_t value, bool fence_properly) {
    const uint64_t n = Used();
    JNVM_CHECK(n < kCells);
    WriteField<uint64_t>(kCellsOff + n * 8, Stamp(value));
    PwbField(kCellsOff + n * 8, 8);
    if (fence_properly) {
      Pfence();
    }
    WriteField<uint64_t>(kUsedOff, n + 1);
    PwbField(kUsedOff, 8);
    if (fence_properly) {
      Pfence();
    }
  }

  uint64_t Used() const { return ReadField<uint64_t>(kUsedOff); }
  uint64_t Cell(uint64_t i) const { return ReadField<uint64_t>(kCellsOff + i * 8); }

  // Runs on the raw view during the collection pass, before resurrection.
  static void RecoverHook(ObjectView& view) {
    g_recover_calls.fetch_add(1);
    uint64_t used = view.Read<uint64_t>(kUsedOff);
    if (used > kCells) {
      used = kCells;  // torn counter
    }
    // Truncate to the longest prefix of well-stamped cells.
    uint64_t consistent = 0;
    while (consistent < used && StampOk(view.Read<uint64_t>(kCellsOff + consistent * 8))) {
      ++consistent;
    }
    if (consistent != view.Read<uint64_t>(kUsedOff)) {
      view.Write<uint64_t>(kUsedOff, consistent);
      view.PwbRange(kUsedOff, 8);
    }
  }
};

struct Fixture {
  explicit Fixture(bool strict) {
    nvm::DeviceOptions o;
    o.size_bytes = 8 << 20;
    o.strict = strict;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

TEST(RecoverHookTest, HookRunsForEveryLiveObject) {
  Fixture f(false);
  {
    Journal a(*f.rt);
    Journal b(*f.rt);
    a.Append(1, true);
    b.Append(2, true);
    for (Journal* j : {&a, &b}) {
      j->Pwb();
      j->Validate();
    }
    f.rt->root().Put("a", &a);
    f.rt->root().Put("b", &b);
  }
  g_recover_calls = 0;
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  EXPECT_EQ(g_recover_calls.load(), 2) << "one recover() per live Journal";
  EXPECT_EQ(f.rt->root().GetAs<Journal>("a")->Used(), 1u);
}

TEST(RecoverHookTest, HookNotCalledByBlockScanRecovery) {
  // The nogc variant skips the collection pass — and therefore the hooks.
  Fixture f(false);
  {
    Journal a(*f.rt);
    a.Append(1, true);
    a.Pwb();
    a.Validate();
    f.rt->root().Put("a", &a);
  }
  g_recover_calls = 0;
  f.rt.reset();
  RuntimeOptions opts;
  opts.graph_recovery = false;
  f.rt = JnvmRuntime::Open(f.dev.get(), opts);
  EXPECT_EQ(g_recover_calls.load(), 0);
}

TEST(RecoverHookTest, RepairsTornAppendAcrossCrashSweep) {
  for (uint64_t crash_at = 2; crash_at < 120; crash_at += 3) {
    Fixture f(true);
    {
      Journal j(*f.rt);
      j.Pwb();
      j.Validate();
      f.rt->root().Put("j", &j);
      f.rt->Psync();
      f.dev->ScheduleCrashAfter(crash_at);
      try {
        for (uint64_t v = 1; v <= 10; ++v) {
          j.Append(v, /*fence_properly=*/false);  // low-level, no fences
        }
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      f.rt->Abandon();
    }
    f.rt.reset();
    f.dev->Crash(crash_at * 31 + 5);
    f.rt = JnvmRuntime::Open(f.dev.get());
    const auto j = f.rt->root().GetAs<Journal>("j");
    ASSERT_NE(j, nullptr);
    // The hook's postcondition: `used` covers only well-stamped cells, and
    // their values form a prefix 1..used.
    const uint64_t used = j->Used();
    ASSERT_LE(used, 10u) << "crash_at " << crash_at;
    for (uint64_t i = 0; i < used; ++i) {
      const uint64_t cell = j->Cell(i);
      EXPECT_TRUE(Journal::StampOk(cell)) << "crash_at " << crash_at;
      EXPECT_EQ(cell >> 8, i + 1) << "crash_at " << crash_at;
    }
    // And the journal keeps working.
    if (used < Journal::kCells) {
      auto mutable_j = f.rt->root().GetAs<Journal>("j");
      mutable_j->Append(used + 1, true);
      EXPECT_EQ(mutable_j->Used(), used + 1);
    }
  }
}

TEST(HeapUsageTest, SnapshotTracksAllocations) {
  Fixture f(false);
  const auto before = f.rt->heap().GetUsage();
  std::vector<std::unique_ptr<Journal>> js;
  for (int i = 0; i < 50; ++i) {
    js.push_back(std::make_unique<Journal>(*f.rt));
  }
  const auto during = f.rt->heap().GetUsage();
  EXPECT_GT(during.in_use_blocks, before.in_use_blocks);
  EXPECT_GT(during.utilization, before.utilization);
  for (auto& j : js) {
    f.rt->Free(*j);
  }
  const auto after = f.rt->heap().GetUsage();
  EXPECT_GE(after.free_queue_blocks, 50u);
  EXPECT_EQ(after.in_use_blocks, before.in_use_blocks);
}

}  // namespace
}  // namespace jnvm::core
