// Crash-during-recovery tests: recovery itself writes to NVMM (log replay,
// reference nullification, header sweeps), so power can fail *again* before
// it finishes. Replay is idempotent and the collection pass re-derives all
// volatile state, so any number of back-to-back failures must converge.
#include <gtest/gtest.h>

#include "src/core/integrity.h"
#include "src/pdt/pmap.h"
#include "src/pmdkx/pmdk_pool.h"

namespace jnvm {
namespace {

using core::JnvmRuntime;

TEST(RecoveryCrashTest, CrashDuringRecoveryThenRecoverAgain) {
  for (uint64_t first_crash : {300u, 900u, 2000u}) {
    for (uint64_t recovery_crash : {10u, 60u, 250u, 1000u}) {
      nvm::DeviceOptions o;
      o.size_bytes = 32 << 20;
      o.strict = true;
      auto dev = std::make_unique<nvm::PmemDevice>(o);
      // Phase 1: workload, crash mid-flight.
      {
        auto rt = JnvmRuntime::Format(dev.get());
        pdt::PStringHashMap m(*rt, 8);
        m.Pwb();
        m.Validate();
        rt->root().Put("m", &m);
        rt->Psync();
        dev->ScheduleCrashAfter(first_crash);
        try {
          for (int i = 0; i < 100; ++i) {
            rt->FaStart();
            pdt::PString v(*rt, "v" + std::to_string(i));
            m.Put("k" + std::to_string(i % 11), &v);
            rt->FaEnd();
          }
          dev->CancelScheduledCrash();
        } catch (const nvm::SimulatedCrash&) {
        }
        rt->Abandon();
      }
      dev->Crash(first_crash);

      // Phase 2: crash *during* recovery.
      dev->ScheduleCrashAfter(recovery_crash);
      try {
        auto rt = JnvmRuntime::Open(dev.get());
        dev->CancelScheduledCrash();
        rt->Abandon();
      } catch (const nvm::SimulatedCrash&) {
      }
      dev->Crash(recovery_crash * 7 + 3);

      // Phase 3: recovery must now succeed and restore every invariant.
      auto rt = JnvmRuntime::Open(dev.get());
      const auto report = core::VerifyHeapIntegrity(*rt);
      EXPECT_TRUE(report.ok())
          << "first=" << first_crash << " recovery=" << recovery_crash << "\n"
          << report.Summary();
      const auto m = rt->root().GetAs<pdt::PStringHashMap>("m");
      ASSERT_NE(m, nullptr);
      // Surviving values are complete (the FA property held throughout).
      m->ForEach([&](const std::string& k, core::Handle<core::PObject> v) {
        ASSERT_NE(v, nullptr) << k;
        const auto s = std::static_pointer_cast<pdt::PString>(v);
        EXPECT_EQ(s->Str().rfind("v", 0), 0u);
      });
      // And the store keeps working.
      pdt::PString fresh(*rt, "post");
      m->Put("fresh", &fresh);
      EXPECT_EQ(m->GetAs<pdt::PString>("fresh")->Str(), "post");
    }
  }
}

TEST(RecoveryCrashTest, CommittedLogSurvivesReplayCrash) {
  // Force a crash after commit but before the log is erased; recovery then
  // crashes mid-replay; the second recovery must still apply the log fully.
  nvm::DeviceOptions o;
  o.size_bytes = 32 << 20;
  o.strict = true;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  {
    auto rt = JnvmRuntime::Format(dev.get());
    pdt::PStringHashMap m(*rt, 8);
    m.Pwb();
    m.Validate();
    rt->root().Put("m", &m);
    pdt::PString v0(*rt, "before");
    m.Put("k", &v0);
    rt->Psync();
    // Find a crash point inside the commit/apply window by sweeping.
    bool crashed_post_commit = false;
    for (uint64_t at = 1; at < 400 && !crashed_post_commit; ++at) {
      // Rebuild a fresh update each probe on a scratch key.
      dev->ScheduleCrashAfter(at);
      try {
        rt->FaStart();
        pdt::PString v(*rt, "after" + std::to_string(at));
        m.Put("k", &v);
        rt->FaEnd();
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
        crashed_post_commit = true;  // some probe landed mid-commit/apply
      }
    }
    ASSERT_TRUE(crashed_post_commit);
    rt->Abandon();
  }
  dev->Crash(99);
  // First recovery attempt crashes almost immediately (possibly mid-replay).
  dev->ScheduleCrashAfter(5);
  try {
    auto rt = JnvmRuntime::Open(dev.get());
    dev->CancelScheduledCrash();
    rt->Abandon();
  } catch (const nvm::SimulatedCrash&) {
  }
  dev->Crash(123);
  auto rt = JnvmRuntime::Open(dev.get());
  const auto m = rt->root().GetAs<pdt::PStringHashMap>("m");
  ASSERT_NE(m, nullptr);
  const auto v = m->GetAs<pdt::PString>("k");
  ASSERT_NE(v, nullptr);
  const std::string got = v->Str();
  EXPECT_TRUE(got == "before" || got.rfind("after", 0) == 0) << got;
  EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
}

// ---- pmdkx pool recovery ----------------------------------------------------------

TEST(PmdkPoolRecovery, UncommittedTxRolledBackOnOpen) {
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  o.strict = true;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  pmdkx::Offset cell;
  {
    pmdkx::PmdkPool pool(dev.get(), 0, 8 << 20);
    cell = pool.Alloc(16);
    pool.WriteT<uint64_t>(cell, 1111);
    pool.dev().PwbRange(0, 8 << 20);
    pool.dev().Psync();
    pool.TxBegin();
    pool.TxSnapshot(cell, 8);
    pool.WriteT<uint64_t>(cell, 2222);
    // Crash before TxCommit: the snapshot is durable, the write maybe.
  }
  dev->Crash(7);
  uint32_t rolled_back = 0;
  auto pool = pmdkx::PmdkPool::Open(dev.get(), 0, 8 << 20, &rolled_back);
  EXPECT_EQ(rolled_back, 1u);
  EXPECT_EQ(pool->ReadT<uint64_t>(cell), 1111u) << "undo must restore the old value";
}

TEST(PmdkPoolRecovery, CommittedTxNotRolledBack) {
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  o.strict = true;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  pmdkx::Offset cell;
  {
    pmdkx::PmdkPool pool(dev.get(), 0, 8 << 20);
    cell = pool.Alloc(16);
    pool.TxBegin();
    pool.TxSnapshot(cell, 8);
    pool.WriteT<uint64_t>(cell, 3333);
    pool.TxCommit();
  }
  dev->Crash(11);
  uint32_t rolled_back = 0;
  auto pool = pmdkx::PmdkPool::Open(dev.get(), 0, 8 << 20, &rolled_back);
  EXPECT_EQ(rolled_back, 0u);
  EXPECT_EQ(pool->ReadT<uint64_t>(cell), 3333u);
}

TEST(PmdkPoolRecovery, BumpPersistsAcrossReopen) {
  nvm::DeviceOptions o;
  o.size_bytes = 8 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  uint64_t bump;
  {
    pmdkx::PmdkPool pool(dev.get(), 0, 8 << 20);
    for (int i = 0; i < 10; ++i) {
      pool.Alloc(64);
    }
    bump = pool.bump();
  }
  auto pool = pmdkx::PmdkPool::Open(dev.get(), 0, 8 << 20);
  EXPECT_EQ(pool->bump(), bump);
  // New allocations continue past the recovered bump.
  EXPECT_GE(pool->Alloc(64), bump - 64);
}

}  // namespace
}  // namespace jnvm
