// End-to-end integration: the full store stack (KvStore + backend + YCSB
// runner) driven through load, workload, clean restart, crash + recovery,
// and continued service — for each persistent backend that supports
// restart, with the heap audited at every stage.
#include <gtest/gtest.h>

#include "src/core/integrity.h"
#include "src/fs/sim_fs.h"
#include "src/store/fs_backend.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/kvstore.h"
#include "src/ycsb/runner.h"

namespace jnvm {
namespace {

using store::Record;

constexpr uint64_t kRecords = 400;
constexpr uint32_t kFields = 4;
constexpr uint32_t kFieldLen = 24;

ycsb::WorkloadSpec SmallSpec(ycsb::WorkloadSpec base) {
  base.record_count = kRecords;
  base.fields = kFields;
  base.field_len = kFieldLen;
  return base;
}

// Shared scenario body: load through the store, run a YCSB-A burst, verify
// every record is complete and well-formed.
void VerifyAllRecords(store::KvStore& kv) {
  Record r;
  for (uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(kv.Read(ycsb::KeyFor(i), &r)) << "lost record " << i;
    ASSERT_EQ(r.fields.size(), kFields);
    for (const std::string& f : r.fields) {
      EXPECT_EQ(f.size(), kFieldLen);
    }
  }
}

template <typename BackendT>
void RunJnvmScenario(bool crash) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  o.strict = crash;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  store::StoreOptions sopts;
  sopts.cache_ratio = 0.0;

  // Phase 1: load + workload.
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    BackendT backend(rt.get());
    store::KvStore kv(&backend, nullptr, sopts);
    ycsb::LoadPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()));
    ycsb::RunPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()), 2'000, 1, 7);
    EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
    if (crash) {
      dev->ScheduleCrashAfter(5'000);
      try {
        ycsb::RunPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()), 50'000, 1, 9);
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
  }
  if (crash) {
    dev->Crash(1234);
  }

  // Phase 2: restart (recovery when crashed), verify, keep serving.
  auto rt = core::JnvmRuntime::Open(dev.get());
  EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
  BackendT backend(rt.get());
  store::KvStore kv(&backend, nullptr, sopts);
  EXPECT_EQ(backend.Size(), kRecords);
  VerifyAllRecords(kv);
  const auto result = ycsb::RunPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()),
                                     2'000, 1, 11);
  EXPECT_EQ(result.ops, 2'000u);
  EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
}

TEST(StoreIntegration, JpdtCleanRestart) { RunJnvmScenario<store::JpdtBackend>(false); }
TEST(StoreIntegration, JpdtCrashRecovery) { RunJnvmScenario<store::JpdtBackend>(true); }
TEST(StoreIntegration, JpfaCleanRestart) { RunJnvmScenario<store::JpfaBackend>(false); }
TEST(StoreIntegration, JpfaCrashRecovery) { RunJnvmScenario<store::JpfaBackend>(true); }

TEST(StoreIntegration, FsRestartWithIndexRebuildAndWarmCache) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  fs::FsOptions fopts;
  fopts.syscall_latency_ns = 0;
  store::StoreOptions sopts;
  sopts.cache_ratio = 0.25;
  sopts.expected_records = kRecords;
  {
    fs::NvmFs simfs(dev.get(), 0, 64 << 20, fopts);
    store::FsBackend backend(&simfs, "FS");
    gcsim::ManagedHeap gc(gcsim::GcOptions{});
    store::KvStore kv(&backend, &gc, sopts);
    ycsb::LoadPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()));
    ycsb::RunPhase(&kv, SmallSpec(ycsb::WorkloadSpec::A()), 3'000, 1, 7);
  }  // killed
  fs::NvmFs simfs(dev.get(), 0, 64 << 20, fopts);
  store::FsBackend backend(&simfs, "FS");
  EXPECT_EQ(backend.RebuildIndex(), kRecords);
  gcsim::ManagedHeap gc(gcsim::GcOptions{});
  store::KvStore kv(&backend, &gc, sopts);
  EXPECT_EQ(kv.WarmCache(backend.Keys()), kRecords / 4);
  VerifyAllRecords(kv);
}

// Two stores on one runtime (distinct root names) must not interfere.
TEST(StoreIntegration, TwoBackendsShareOneHeap) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  auto rt = core::JnvmRuntime::Format(dev.get());
  store::JpdtBackend a(rt.get(), "store.a");
  store::JpdtBackend b(rt.get(), "store.b");
  const Record ra = store::SyntheticRecord(1, 0, 3, 8);
  const Record rb = store::SyntheticRecord(2, 0, 3, 8);
  a.Put("k", ra);
  b.Put("k", rb);
  Record out;
  ASSERT_TRUE(a.Get("k", &out));
  EXPECT_EQ(out, ra);
  ASSERT_TRUE(b.Get("k", &out));
  EXPECT_EQ(out, rb);
  a.Delete("k");
  EXPECT_FALSE(a.Get("k", &out));
  ASSERT_TRUE(b.Get("k", &out));
  EXPECT_EQ(out, rb);
  EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok());
}

// Workload D (inserts) against a persistent backend across restart: the
// extended key space must survive.
TEST(StoreIntegration, WorkloadDInsertsSurviveRestart) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  uint64_t inserted = 0;
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    store::JpdtBackend backend(rt.get());
    store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    store::KvStore kv(&backend, nullptr, sopts);
    const auto spec = SmallSpec(ycsb::WorkloadSpec::D());
    ycsb::LoadPhase(&kv, spec);
    const auto result = ycsb::RunPhase(&kv, spec, 3'000, 1, 13);
    inserted = result.insert.count();
    EXPECT_GT(inserted, 0u);
  }
  auto rt = core::JnvmRuntime::Open(dev.get());
  store::JpdtBackend backend(rt.get());
  EXPECT_EQ(backend.Size(), kRecords + inserted);
}

}  // namespace
}  // namespace jnvm
