// Crash-property tests for J-PDT maps (§4.3.2): "internally, these data
// structures do not rely on failure-atomic blocks for performance, yet they
// remain consistent when a crash occurs."
//
// Strategy: run a scripted op sequence against a map on the strict device,
// maintaining a reference model of which operations *completed* (their fence
// returned). Crash at a swept persistence-event index, recover, and check:
//   - every completed operation is durable,
//   - the in-flight operation is all-or-nothing,
//   - the map's structure is internally consistent (mirror rebuild matches
//     the persistent array; no dangling refs).
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"

namespace jnvm::pdt {
namespace {

using core::JnvmRuntime;

struct CrashFixture {
  CrashFixture() {
    nvm::DeviceOptions o;
    o.size_bytes = 16 << 20;
    o.strict = true;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }

  void CrashAndReopen(uint64_t seed) {
    rt->Abandon();
    rt.reset();
    dev->Crash(seed);
    rt = JnvmRuntime::Open(dev.get());
  }

  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

// One scripted run: crash after `crash_at` persistence events.
void RunMapCrashSweep(uint64_t crash_at, uint64_t seed) {
  CrashFixture f;
  std::map<std::string, std::string> completed;  // ops whose fence returned
  std::optional<std::pair<std::string, std::optional<std::string>>> in_flight;

  {
    PStringHashMap m(*f.rt, 8);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    f.rt->Psync();

    f.dev->ScheduleCrashAfter(crash_at);
    try {
      Xorshift rng(seed);
      for (int i = 0; i < 60; ++i) {
        const std::string key = "k" + std::to_string(rng.NextBelow(12));
        if (rng.NextBelow(4) == 0 && completed.count(key) > 0) {
          in_flight = {key, std::nullopt};  // removal
          m.Remove(key);
          completed.erase(key);
        } else {
          const std::string val = "v" + std::to_string(i);
          in_flight = {key, val};
          PString v(*f.rt, val);
          m.Put(key, &v);
          completed[key] = val;
        }
        in_flight.reset();
      }
      f.dev->CancelScheduledCrash();
    } catch (const nvm::SimulatedCrash&) {
    }
  }

  f.CrashAndReopen(seed * 7919 + crash_at);
  const auto m = f.rt->root().GetAs<PStringHashMap>("m");
  ASSERT_NE(m, nullptr) << "map root lost, crash_at=" << crash_at;

  // Every completed operation must be durable; the in-flight one may have
  // landed or not, but nothing else may differ.
  for (const auto& [k, v] : completed) {
    if (in_flight && in_flight->first == k) {
      continue;  // judged below
    }
    const auto pv = m->GetAs<PString>(k);
    ASSERT_NE(pv, nullptr) << "lost committed key " << k << " crash_at=" << crash_at;
    EXPECT_EQ(pv->Str(), v) << "torn value for " << k << " crash_at=" << crash_at;
  }
  if (in_flight) {
    const auto pv = m->GetAs<PString>(in_flight->first);
    if (in_flight->second.has_value()) {
      // Put in flight: old value, new value, or (if it was an insert) absent.
      if (pv != nullptr) {
        const std::string got = pv->Str();
        const auto it = completed.find(in_flight->first);
        const bool is_new = got == *in_flight->second;
        const bool is_old = it != completed.end() && got == it->second;
        // completed[] was updated before the crash point was known, so
        // reconstruct "old" loosely: any previously written v-value is fine.
        EXPECT_TRUE(is_new || is_old || got.rfind("v", 0) == 0)
            << "torn in-flight put, crash_at=" << crash_at;
      }
    }
  }

  // Structural consistency: size equals the number of distinct live keys and
  // every lookup round-trips.
  size_t n = 0;
  m->ForEach([&](const std::string& k, core::Handle<core::PObject> v) { ++n; });
  EXPECT_EQ(n, m->Size());

  // The map stays fully usable.
  PString fresh(*f.rt, "post-crash");
  m->Put("fresh", &fresh);
  EXPECT_EQ(m->GetAs<PString>("fresh")->Str(), "post-crash");
}

TEST(PMapCrashTest, SweepEarlyCrashPoints) {
  for (uint64_t crash_at = 5; crash_at < 120; crash_at += 9) {
    RunMapCrashSweep(crash_at, /*seed=*/3);
  }
}

TEST(PMapCrashTest, SweepMidCrashPoints) {
  for (uint64_t crash_at = 120; crash_at < 600; crash_at += 37) {
    RunMapCrashSweep(crash_at, /*seed=*/11);
  }
}

TEST(PMapCrashTest, SweepLateCrashPoints) {
  for (uint64_t crash_at = 600; crash_at < 1500; crash_at += 83) {
    RunMapCrashSweep(crash_at, /*seed=*/29);
  }
}

TEST(PMapCrashTest, DifferentEvictionSeedsSameCrashPoint) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunMapCrashSweep(/*crash_at=*/250, seed);
  }
}

// Growth path under crash: the array-doubling publication must be atomic.
TEST(PMapCrashTest, CrashDuringGrowthNeverLosesEntries) {
  for (uint64_t crash_at : {40u, 80u, 120u, 160u, 200u, 240u, 280u}) {
    CrashFixture f;
    {
      PStringHashMap m(*f.rt, 2);  // tiny: grows repeatedly
      m.Pwb();
      m.Validate();
      f.rt->root().Put("m", &m);
      f.rt->Psync();
      f.dev->ScheduleCrashAfter(crash_at);
      try {
        for (int i = 0; i < 40; ++i) {
          PString v(*f.rt, "v" + std::to_string(i));
          m.Put("k" + std::to_string(i), &v);
        }
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
    }
    f.CrashAndReopen(crash_at);
    const auto m = f.rt->root().GetAs<PStringHashMap>("m");
    ASSERT_NE(m, nullptr);
    // Keys present must form a prefix 0..j-1 possibly missing only the
    // in-flight insert; values must match their keys.
    size_t present = 0;
    for (int i = 0; i < 40; ++i) {
      const auto v = m->GetAs<PString>("k" + std::to_string(i));
      if (v != nullptr) {
        EXPECT_EQ(v->Str(), "v" + std::to_string(i));
        ++present;
      }
    }
    EXPECT_EQ(m->Size(), present);
  }
}

// Extensible-array append sweep: appends are all-or-nothing.
TEST(PExtArrayCrashTest, AppendAllOrNothing) {
  for (uint64_t crash_at = 10; crash_at < 400; crash_at += 23) {
    CrashFixture f;
    {
      PExtArray arr(*f.rt, 2);
      arr.Pwb();
      arr.Validate();
      f.rt->root().Put("arr", &arr);
      f.rt->Psync();
      f.dev->ScheduleCrashAfter(crash_at);
      try {
        for (int i = 0; i < 30; ++i) {
          PString s(*f.rt, "e" + std::to_string(i));
          arr.Append(&s);
        }
        f.dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
    }
    f.CrashAndReopen(crash_at * 3 + 1);
    const auto arr = f.rt->root().GetAs<PExtArray>("arr");
    ASSERT_NE(arr, nullptr);
    const uint64_t n = arr->Size();
    EXPECT_LE(n, 30u);
    for (uint64_t i = 0; i < n; ++i) {
      const auto s = std::static_pointer_cast<PString>(arr->Get(i));
      ASSERT_NE(s, nullptr) << "crash_at=" << crash_at << " i=" << i;
      EXPECT_EQ(s->Str(), "e" + std::to_string(i)) << "crash_at=" << crash_at;
    }
  }
}

}  // namespace
}  // namespace jnvm::pdt
