// Concurrency tests: per-thread failure-atomic logs, parallel map usage,
// and parallel allocation against one heap (§3.2 per-thread counters,
// §4.1.2 concurrent free queue).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/integrity.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/tpcb/bank.h"

namespace jnvm {
namespace {

using core::JnvmRuntime;

struct Fixture {
  explicit Fixture(size_t bytes = 64 << 20) {
    nvm::DeviceOptions o;
    o.size_bytes = bytes;
    dev = std::make_unique<nvm::PmemDevice>(o);
    rt = JnvmRuntime::Format(dev.get());
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<JnvmRuntime> rt;
};

TEST(ConcurrencyTest, ParallelFaBlocksUseDistinctLogs) {
  Fixture f;
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 200;
  tpcb::JpfaBank bank(f.rt.get());
  bank.CreateAccounts(64, 1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(t + 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        bank.Transfer(static_cast<int64_t>(rng.NextBelow(64)),
                      static_cast<int64_t>(rng.NextBelow(64)), 5);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  int64_t total = 0;
  for (int64_t i = 0; i < 64; ++i) {
    total += bank.Balance(i);
  }
  EXPECT_EQ(total, 64 * 1000);
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(ConcurrencyTest, ParallelMapWritersDisjointKeys) {
  Fixture f;
  pdt::PStringHashMap m(*f.rt, 1024);
  m.Pwb();
  m.Validate();
  f.rt->root().Put("m", &m);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        pdt::PString v(*f.rt, "t" + std::to_string(t) + "v" + std::to_string(i));
        m.Put("t" + std::to_string(t) + "k" + std::to_string(i), &v);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(m.Size(), static_cast<size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 37) {
      const auto v =
          m.GetAs<pdt::PString>("t" + std::to_string(t) + "k" + std::to_string(i));
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v->Str(), "t" + std::to_string(t) + "v" + std::to_string(i));
    }
  }
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(ConcurrencyTest, ParallelMapMixedOpsStayConsistent) {
  Fixture f;
  pdt::PStringHashMap m(*f.rt, 256);
  m.Pwb();
  m.Validate();
  f.rt->root().Put("m", &m);
  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(t * 7 + 1);
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string(rng.NextBelow(64));
        switch (rng.NextBelow(3)) {
          case 0: {
            pdt::PString v(*f.rt, "v" + std::to_string(i));
            m.Put(key, &v);
            break;
          }
          case 1:
            m.Remove(key);
            break;
          default: {
            const auto v = m.GetAs<pdt::PString>(key);
            if (v != nullptr && v->Str().rfind("v", 0) != 0) {
              failed = true;  // torn value observed
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(ConcurrencyTest, ParallelAllocationSurvivesRestart) {
  Fixture f;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          pdt::PString s(*f.rt, "thread" + std::to_string(t) + "-" + std::to_string(i) +
                                    std::string(300, 'x'));
          s.Validate();
          f.rt->root().Put("s" + std::to_string(t) + "." + std::to_string(i), &s);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  EXPECT_EQ(f.rt->root().Size(), static_cast<size_t>(kThreads * kPerThread));
  const auto s = f.rt->root().GetAs<pdt::PString>("s3.42");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Str().substr(0, 10), "thread3-42");
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

// ---- Composite persistent structures -------------------------------------------

TEST(CompositeTest, MapOfExtArraysOfStrings) {
  Fixture f;
  {
    pdt::PStringHashMap m(*f.rt, 16);
    m.Pwb();
    m.Validate();
    f.rt->root().Put("m", &m);
    for (int outer = 0; outer < 10; ++outer) {
      pdt::PExtArray arr(*f.rt, 2);
      for (int inner = 0; inner < 20; ++inner) {
        pdt::PString s(*f.rt,
                       "item" + std::to_string(outer) + "." + std::to_string(inner));
        arr.Append(&s);
      }
      arr.Pwb();
      m.Put("list" + std::to_string(outer), &arr, /*free_old_value=*/false);
    }
  }
  f.rt.reset();
  f.rt = JnvmRuntime::Open(f.dev.get());
  const auto m = f.rt->root().GetAs<pdt::PStringHashMap>("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Size(), 10u);
  for (int outer = 0; outer < 10; ++outer) {
    const auto arr = m->GetAs<pdt::PExtArray>("list" + std::to_string(outer));
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->Size(), 20u);
    const auto s = std::static_pointer_cast<pdt::PString>(arr->Get(7));
    EXPECT_EQ(s->Str(), "item" + std::to_string(outer) + ".7");
  }
  EXPECT_TRUE(core::VerifyHeapIntegrity(*f.rt).ok());
}

TEST(CompositeTest, MapOfMapsCrashesSafely) {
  nvm::DeviceOptions o;
  o.size_bytes = 64 << 20;
  o.strict = true;
  auto dev = std::make_unique<nvm::PmemDevice>(o);
  for (const uint64_t crash_at : {200u, 800u, 2500u}) {
    auto rt = JnvmRuntime::Format(dev.get());
    {
      pdt::PStringHashMap outer(*rt, 8);
      outer.Pwb();
      outer.Validate();
      rt->root().Put("outer", &outer);
      rt->Psync();
      dev->ScheduleCrashAfter(crash_at);
      try {
        for (int i = 0; i < 8; ++i) {
          rt->FaStart();
          pdt::PStringTreeMap inner(*rt, 4);
          for (int j = 0; j < 10; ++j) {
            pdt::PString v(*rt, "v" + std::to_string(i * 100 + j));
            inner.Put("k" + std::to_string(j), &v);
          }
          outer.Put("inner" + std::to_string(i), &inner, false);
          rt->FaEnd();
        }
        dev->CancelScheduledCrash();
      } catch (const nvm::SimulatedCrash&) {
      }
      rt->Abandon();
    }
    rt.reset();
    dev->Crash(crash_at);
    rt = JnvmRuntime::Open(dev.get());
    EXPECT_TRUE(core::VerifyHeapIntegrity(*rt).ok()) << "crash_at " << crash_at;
    const auto outer = rt->root().GetAs<pdt::PStringHashMap>("outer");
    ASSERT_NE(outer, nullptr);
    // Every inner map that survived must be complete (FA-wrapped build).
    for (size_t i = 0; i < 8; ++i) {
      const auto inner = outer->GetAs<pdt::PStringTreeMap>("inner" + std::to_string(i));
      if (inner != nullptr) {
        EXPECT_EQ(inner->Size(), 10u) << "half-built inner map, crash_at " << crash_at;
      }
    }
  }
}

}  // namespace
}  // namespace jnvm
