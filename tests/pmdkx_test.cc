// Tests for the mini PMDK pool (undo-log transactions).
#include <gtest/gtest.h>

#include "src/pmdkx/pmdk_pool.h"

namespace jnvm::pmdkx {
namespace {

struct Fixture {
  Fixture() {
    nvm::DeviceOptions o;
    o.size_bytes = 8 << 20;
    o.strict = true;
    dev = std::make_unique<nvm::PmemDevice>(o);
    pool = std::make_unique<PmdkPool>(dev.get(), 0, 8 << 20);
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<PmdkPool> pool;
};

TEST(PmdkPool, AllocDistinct) {
  Fixture f;
  const Offset a = f.pool->Alloc(64);
  const Offset b = f.pool->Alloc(64);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(PmdkPool, FreeRecycles) {
  Fixture f;
  const Offset a = f.pool->Alloc(64);
  f.pool->Free(a, 64);
  EXPECT_EQ(f.pool->Alloc(64), a);
}

TEST(PmdkPool, ReadBackWrites) {
  Fixture f;
  const Offset a = f.pool->Alloc(16);
  f.pool->WriteT<uint64_t>(a, 0xabcdefull);
  EXPECT_EQ(f.pool->ReadT<uint64_t>(a), 0xabcdefull);
}

TEST(PmdkPool, CommittedTxDurable) {
  Fixture f;
  const Offset a = f.pool->Alloc(16);
  f.pool->WriteT<uint64_t>(a, 1);
  f.pool->TxBegin();
  f.pool->TxSnapshot(a, 8);
  f.pool->WriteT<uint64_t>(a, 2);
  f.pool->TxCommit();
  f.dev->Crash(9);
  EXPECT_EQ(f.pool->ReadT<uint64_t>(a), 2u);
}

TEST(PmdkPool, AbortRollsBack) {
  Fixture f;
  const Offset a = f.pool->Alloc(16);
  const Offset b = f.pool->Alloc(16);
  f.pool->WriteT<uint64_t>(a, 1);
  f.pool->WriteT<uint64_t>(b, 10);
  f.pool->TxBegin();
  f.pool->TxSnapshot(a, 8);
  f.pool->WriteT<uint64_t>(a, 2);
  f.pool->TxSnapshot(b, 8);
  f.pool->WriteT<uint64_t>(b, 20);
  f.pool->TxAbort();
  EXPECT_EQ(f.pool->ReadT<uint64_t>(a), 1u);
  EXPECT_EQ(f.pool->ReadT<uint64_t>(b), 10u);
}

TEST(PmdkPool, SnapshotFencesCharged) {
  Fixture f;
  const Offset a = f.pool->Alloc(64);
  f.dev->ResetStats();
  f.pool->TxBegin();
  f.pool->TxSnapshot(a, 64);
  f.pool->WriteT<uint64_t>(a, 1);
  f.pool->TxCommit();
  // One fence per snapshot + two at commit: the PMDK cost model.
  EXPECT_GE(f.dev->stats().pfences, 3u);
}

TEST(PmdkPool, TxCountsTracked) {
  Fixture f;
  const Offset a = f.pool->Alloc(16);
  for (int i = 0; i < 5; ++i) {
    f.pool->TxBegin();
    f.pool->TxSnapshot(a, 8);
    f.pool->WriteT<uint64_t>(a, i);
    f.pool->TxCommit();
  }
  EXPECT_EQ(f.pool->tx_count(), 5u);
  EXPECT_EQ(f.pool->snapshot_bytes(), 40u);
}

}  // namespace
}  // namespace jnvm::pmdkx
