// Tests for the cluster plane (src/cluster + the server integration):
// slot hashing, persisted slot-table recovery, the client's redirect rules
// (-MOVED refreshes the cache and retries, -ASK is one-shot and never
// cached, redirect loops are bounded), the REPLSYNC -BADCONFIG handshake
// guard, the STATS cluster line, and a live two-node slot migration with
// writes racing the handoff.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/cluster/cluster_client.h"
#include "src/cluster/meta.h"
#include "src/cluster/slot_map.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/shard.h"

namespace jnvm {
namespace {

using cluster::ClusterClient;
using cluster::ClusterClientOptions;
using cluster::ClusterOptions;
using cluster::ClusterState;
using cluster::kNumSlots;
using cluster::MigState;
using cluster::SlotForKey;
using server::Client;
using server::RespReply;
using server::Server;
using server::ServerOptions;
using server::ShardOptions;

ShardOptions SmallShard() {
  ShardOptions o;
  o.device_bytes = 32ull << 20;
  o.map_capacity = 1 << 10;
  o.batch = 16;
  return o;
}

// ---- Slot hashing -----------------------------------------------------------

TEST(SlotMap, DeterministicAndInRange) {
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key:" + std::to_string(i);
    const uint16_t s = SlotForKey(key);
    EXPECT_LT(s, kNumSlots);
    EXPECT_EQ(s, SlotForKey(key));  // pure function of the key bytes
  }
  // Not all keys in one slot (the hash actually spreads).
  EXPECT_NE(SlotForKey("key:1"), SlotForKey("key:2"));
}

// A slot's keys must NOT all land on one shard: slot routing (cluster) and
// shard routing (within a node) are decorrelated, so moving a slot moves
// work from every shard, not one.
TEST(SlotMap, DecorrelatedFromShardRouting) {
  const uint16_t target = SlotForKey("key:0");
  std::vector<bool> shard_seen(4, false);
  int found = 0;
  for (int i = 0; i < 2000000 && found < 50; ++i) {
    const std::string key = "key:" + std::to_string(i);
    if (SlotForKey(key) == target) {
      shard_seen[server::ShardFor(key, 4)] = true;
      ++found;
    }
  }
  ASSERT_GE(found, 50);
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(shard_seen[s]) << "slot " << target << " never hit shard " << s;
  }
}

// ---- Persisted slot table ---------------------------------------------------

TEST(ClusterMeta, SlotTableSurvivesReopen) {
  const std::string image =
      (std::filesystem::path(::testing::TempDir()) / "cluster_meta.img")
          .string();
  std::remove(image.c_str());
  std::string err;
  {
    ClusterOptions o;
    o.image_path = image;
    o.self = 0;
    o.announce = "127.0.0.1:7000";
    auto cs = ClusterState::Open(o, &err);
    ASSERT_NE(cs, nullptr) << err;
    ASSERT_TRUE(cs->Meet(1, "127.0.0.1:7001", &err)) << err;
    ASSERT_TRUE(cs->AssignRange(0, 99, 0, &err)) << err;
    ASSERT_TRUE(cs->AssignRange(100, kNumSlots - 1, 1, &err)) << err;
    EXPECT_EQ(cs->epoch(), 2u);  // one bump per assignment
    ASSERT_TRUE(cs->Close());
  }
  {
    ClusterOptions o;
    o.image_path = image;
    o.self = 0;
    auto cs = ClusterState::Open(o, &err);
    ASSERT_NE(cs, nullptr) << err;
    EXPECT_EQ(cs->epoch(), 2u);
    EXPECT_EQ(cs->NodeAddr(1), "127.0.0.1:7001");
    EXPECT_EQ(cs->OwnerOf(0), 0u);
    EXPECT_EQ(cs->OwnerOf(99), 0u);
    EXPECT_EQ(cs->OwnerOf(100), 1u);
    EXPECT_EQ(cs->OwnerOf(kNumSlots - 1), 1u);
    EXPECT_EQ(cs->slots_owned(), 100u);
    EXPECT_EQ(cs->mig_state(), MigState::kNone);
  }
  std::remove(image.c_str());
}

// ---- Two-node fleet fixture -------------------------------------------------

struct Node {
  std::unique_ptr<Server> server;
  std::string addr;
  ClusterState* cs = nullptr;
};

class ClusterE2E : public ::testing::Test {
 protected:
  Node StartNode(uint32_t self) {
    ServerOptions o;
    o.nshards = 2;
    o.shard = SmallShard();
    o.cluster = true;
    o.cluster_meta.self = self;  // volatile meta heap: fine for tests
    std::string err;
    Node n;
    n.server = Server::Start(o, &err);
    EXPECT_NE(n.server, nullptr) << err;
    n.addr = "127.0.0.1:" + std::to_string(n.server->port());
    n.cs = n.server->cluster_state();
    return n;
  }

  // Bootstraps a two-node cluster with every slot owned by node 0.
  void Bootstrap(Node* n0, Node* n1) {
    *n0 = StartNode(0);
    *n1 = StartNode(1);
    std::string err;
    for (ClusterState* cs : {n0->cs, n1->cs}) {
      ASSERT_TRUE(cs->Meet(0, n0->addr, &err)) << err;
      ASSERT_TRUE(cs->Meet(1, n1->addr, &err)) << err;
      ASSERT_TRUE(cs->AssignRange(0, kNumSlots - 1, 0, &err)) << err;
    }
  }

  // A key whose slot falls in [lo, hi] and carries the given prefix.
  static std::string KeyInRange(const std::string& prefix, uint32_t lo,
                                uint32_t hi) {
    for (int i = 0;; ++i) {
      const std::string k = prefix + std::to_string(i);
      const uint16_t s = SlotForKey(k);
      if (s >= lo && s <= hi) {
        return k;
      }
    }
  }
};

TEST_F(ClusterE2E, MovedRefreshesSlotCacheAndRetriesOnce) {
  Node n0, n1;
  Bootstrap(&n0, &n1);

  ClusterClientOptions copts;
  copts.seeds = {n0.addr};
  std::string err;
  auto cc = ClusterClient::Connect(copts, &err);
  ASSERT_NE(cc, nullptr) << err;

  const std::string key = "moved:key";
  const uint16_t slot = SlotForKey(key);
  ASSERT_TRUE(cc->Set(key, "v1"));
  EXPECT_EQ(cc->stats().moved_redirects, 0u);
  EXPECT_EQ(cc->CachedOwner(slot), n0.addr);

  // Ownership flips underneath the client (both tables agree).
  ASSERT_TRUE(n0.cs->AssignRange(slot, slot, 1, &err)) << err;
  ASSERT_TRUE(n1.cs->AssignRange(slot, slot, 1, &err)) << err;

  // The stale cache sends the write to node 0; -MOVED teaches the client
  // the new owner and the retry lands on node 1 — one hop, then cached.
  ASSERT_TRUE(cc->Set(key, "v2"));
  EXPECT_EQ(cc->stats().moved_redirects, 1u);
  EXPECT_EQ(cc->CachedOwner(slot), n1.addr);
  ASSERT_TRUE(cc->Set(key, "v3"));  // cache hit: no further redirects
  EXPECT_EQ(cc->stats().moved_redirects, 1u);

  // The value really lives on node 1 now.
  auto direct = Client::Connect("127.0.0.1", n1.server->port(), &err);
  ASSERT_NE(direct, nullptr) << err;
  EXPECT_EQ(direct->Get(key).value_or("?"), "v3");
}

TEST_F(ClusterE2E, AskIsOneShotAndNeverCached) {
  Node n0, n1;
  Bootstrap(&n0, &n1);
  std::string err;
  // Source migrating [0, 8191] to node 1; destination importing.
  ASSERT_TRUE(n0.cs->StartMigrating(0, 8191, 1, &err)) << err;
  ASSERT_TRUE(n1.cs->StartImporting(0, 8191, 0, &err)) << err;

  ClusterClientOptions copts;
  copts.seeds = {n0.addr};
  auto cc = ClusterClient::Connect(copts, &err);
  ASSERT_NE(cc, nullptr) << err;

  const std::string key = KeyInRange("ask:", 0, 8191);
  const uint16_t slot = SlotForKey(key);
  ASSERT_EQ(cc->CachedOwner(slot), n0.addr);

  // Missing key at the migrating source → -ASK → ASKING write at the dest.
  ASSERT_TRUE(cc->Set(key, "v1"));
  EXPECT_EQ(cc->stats().ask_redirects, 1u);
  EXPECT_EQ(cc->CachedOwner(slot), n0.addr);  // ownership has NOT flipped

  // Every access re-pays the redirect: one-shot, never cached.
  EXPECT_EQ(cc->Get(key).value_or("?"), "v1");
  EXPECT_EQ(cc->stats().ask_redirects, 2u);
  EXPECT_EQ(cc->CachedOwner(slot), n0.addr);

  // The key lives only on the destination; a plain (non-ASKING) read there
  // still answers -MOVED back to the source — importing slots are gated.
  auto direct = Client::Connect("127.0.0.1", n1.server->port(), &err);
  ASSERT_NE(direct, nullptr) << err;
  RespReply r;
  ASSERT_TRUE(direct->Roundtrip({"GET", key}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_EQ(r.str.rfind("MOVED ", 0), 0u) << r.str;
}

TEST_F(ClusterE2E, RedirectLoopsAreBounded) {
  Node n0, n1;
  Bootstrap(&n0, &n1);
  std::string err;
  const std::string key = "loop:key";
  const uint16_t slot = SlotForKey(key);
  // Conflicting tables: each node claims the other owns the slot.
  ASSERT_TRUE(n0.cs->AssignRange(slot, slot, 1, &err)) << err;
  // (node 1's table still says node 0 — the Bootstrap assignment.)

  ClusterClientOptions copts;
  copts.seeds = {n0.addr};
  copts.max_hops = 4;
  auto cc = ClusterClient::Connect(copts, &err);
  ASSERT_NE(cc, nullptr) << err;

  RespReply r;
  EXPECT_FALSE(cc->Roundtrip({"GET", key}, key, &r));
  EXPECT_NE(cc->last_error().find("redirect loop"), std::string::npos)
      << cc->last_error();
  EXPECT_EQ(cc->stats().moved_redirects, 4u);  // exactly max_hops, then stop
}

TEST_F(ClusterE2E, ReplsyncRejectsMismatchedConfig) {
  Node n0 = StartNode(0);
  std::string err;
  auto c = Client::Connect("127.0.0.1", n0.server->port(), &err);
  ASSERT_NE(c, nullptr) << err;

  // Shard-count mismatch: the server runs 2 shards.
  RespReply r;
  ASSERT_TRUE(c->Roundtrip({"REPLSYNC", "0", "1", "3"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_EQ(r.str.rfind("BADCONFIG", 0), 0u) << r.str;
  EXPECT_NE(r.str.find("shard count"), std::string::npos);

  // Config-epoch mismatch (the fresh node is at epoch 0).
  ASSERT_TRUE(c->Roundtrip({"REPLSYNC", "0", "1", "2", "7"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kError);
  EXPECT_EQ(r.str.rfind("BADCONFIG", 0), 0u) << r.str;
  EXPECT_NE(r.str.find("epoch"), std::string::npos);
}

TEST_F(ClusterE2E, LiveMigrationMovesKeysExactlyOnce) {
  Node n0, n1;
  Bootstrap(&n0, &n1);
  std::string err;

  ClusterClientOptions copts;
  copts.seeds = {n0.addr};
  auto cc = ClusterClient::Connect(copts, &err);
  ASSERT_NE(cc, nullptr) << err;

  // Preload, then kick off a throttled live migration of half the space so
  // writes genuinely race the copy/catch-up/handoff phases.
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("mig:" + std::to_string(i));
    ASSERT_TRUE(cc->Set(keys.back(), "v0:" + keys.back()));
  }
  auto admin = Client::Connect("127.0.0.1", n0.server->port(), &err);
  ASSERT_NE(admin, nullptr) << err;
  RespReply r;
  ASSERT_TRUE(admin->Roundtrip(
      {"CLUSTER", "SETSLOT", "MIGRATE", "0", "8191", "1", "2"}, &r));
  ASSERT_EQ(r.type, RespReply::Type::kSimple) << r.str;

  // Writes racing the migration; the client absorbs every redirect.
  for (const std::string& k : keys) {
    ASSERT_TRUE(cc->Set(k, "v1:" + k)) << cc->last_error();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (n0.server->migrator()->busy()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "migration stuck: " << n0.server->migrator()->status();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(n0.cs->OwnerOf(0), 1u);
  EXPECT_EQ(n1.cs->OwnerOf(0), 1u);
  EXPECT_EQ(n0.cs->mig_state(), MigState::kNone);
  EXPECT_GE(n0.cs->epoch(), 2u);

  // Every acked key readable exactly once at its current owner; an
  // in-range read at the old owner answers -MOVED, never a value.
  auto src = Client::Connect("127.0.0.1", n0.server->port(), &err);
  auto dst = Client::Connect("127.0.0.1", n1.server->port(), &err);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  for (const std::string& k : keys) {
    EXPECT_EQ(cc->Get(k).value_or("?"), "v1:" + k) << k;
    const bool in_range = SlotForKey(k) <= 8191;
    Client* owner = in_range ? dst.get() : src.get();
    Client* other = in_range ? src.get() : dst.get();
    EXPECT_EQ(owner->Get(k).value_or("?"), "v1:" + k) << k;
    ASSERT_TRUE(other->Roundtrip({"GET", k}, &r)) << k;
    ASSERT_EQ(r.type, RespReply::Type::kError) << k << ": " << r.str;
    EXPECT_EQ(r.str.rfind("MOVED ", 0), 0u) << r.str;
  }

  // The STATS cluster line carries the migration counters (asserted here
  // so the line's shape is pinned by a test).
  const auto stats0 = src->Stats();
  ASSERT_TRUE(stats0.has_value());
  EXPECT_NE(stats0->find("cluster: epoch="), std::string::npos) << *stats0;
  EXPECT_NE(stats0->find("migrations_out=1"), std::string::npos) << *stats0;
  EXPECT_NE(stats0->find("moved_replies="), std::string::npos) << *stats0;
  const auto stats1 = dst->Stats();
  ASSERT_TRUE(stats1.has_value());
  EXPECT_NE(stats1->find("migrations_in=1"), std::string::npos) << *stats1;
  EXPECT_NE(stats1->find("slots_owned=8192"), std::string::npos) << *stats1;
}

}  // namespace
}  // namespace jnvm
