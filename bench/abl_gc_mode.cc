// Ablation — stop-the-world vs incremental collection (§2.2.1).
//
// Figure 1's right panel shows that a big managed heap hurts *tail* latency:
// G1 bounds pauses by collecting incrementally, yet the paper still measures
// a 50x tail degradation at the 0.9999 percentile. This ablation runs the
// same YCSB-F/100%-cache configuration under both collector modes: the
// incremental collector trades the giant stop-the-world pause for many small
// ones — total GC time (the §2.2.1 cost J-NVM avoids entirely) stays.
#include "bench/bench_util.h"
#include "src/store/fs_backend.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

void RunMode(gcsim::GcMode mode, const char* label) {
  BenchConfig cfg;
  cfg.records = Scaled(40'000);
  const uint64_t ops = Scaled(50'000);

  const uint64_t bytes = AutoDeviceBytes(cfg);
  nvm::PmemDevice dev(OptaneLike(bytes));
  fs::NvmFs simfs(&dev, 0, bytes, DaxSyscall());
  store::FsBackend backend(&simfs, "FS", store::SerCostModel::JavaLike());
  gcsim::GcOptions gcopts;
  gcopts.gc_trigger_bytes = 1ull << 20;
  gcopts.mode = mode;
  gcsim::ManagedHeap gc(gcopts);
  store::StoreOptions sopts;
  sopts.cache_ratio = 1.0;  // 100% cache: the GC-dominated configuration
  sopts.expected_records = cfg.records;
  store::KvStore kv(&backend, &gc, sopts);

  const auto spec = SpecFor(cfg, ycsb::WorkloadSpec::F());
  ycsb::LoadPhase(&kv, spec);
  const auto r = ycsb::RunPhase(&kv, spec, ops, 1, 42, &gc);
  const double gc_s = static_cast<double>(r.gc_ns) / 1e9;
  const auto& pauses = gc.pause_histogram();
  std::printf("%-14s completion %6.2fs  gc %5.2fs (%4.1f%%)  pauses: n=%llu "
              "p50=%.2fms max=%.2fms   op p9999=%.2fms\n",
              label, r.seconds, gc_s, 100.0 * gc_s / r.seconds,
              static_cast<unsigned long long>(pauses.count()),
              pauses.ValueAtQuantile(0.5) / 1e6,
              static_cast<double>(pauses.max_ns()) / 1e6,
              static_cast<double>(r.all.ValueAtQuantile(0.9999)) / 1e6);
}

}  // namespace

int main() {
  PrintHeader("Ablation — stop-the-world vs incremental collection, "
              "YCSB-F at 100% cache",
              "pause bounding (G1/go-pmem) shrinks the max pause but the "
              "total GC tax of a big live set remains (§2.2.1)");
  std::printf("\n");
  RunMode(gcsim::GcMode::kStopTheWorld, "stop-the-world");
  RunMode(gcsim::GcMode::kIncremental, "incremental");
  std::printf("\nJ-NVM's answer (§2): move persistent objects off-heap and "
              "collect only at recovery —\nno runtime pause of either kind.\n");
  return 0;
}
