// Ablation — synchronous-replication latency vs the WAIT-K quorum (§8).
//
// --wait-acks=K parks every write batch between its local Psync and its
// reply until K replication subscribers have acknowledged the sealed log
// sequence (REPLACK). The client-visible SET latency therefore grows from
// one local group commit (K=0) to local commit + one stream round-trip +
// the follower's own apply-batch group commit (K>=1). This ablation runs a
// real primary plus two replicas over loopback and measures closed-loop
// SET latency for K in {0,1,2} at two group-commit batch sizes, reporting
// the wait_timeouts counter to prove the quorum was actually met (a
// degraded run would be invisible in throughput alone).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

// Sums every occurrence of `field` (e.g. "wait_timeouts=") in a STATS body.
uint64_t SumField(const std::string& stats, const char* field) {
  uint64_t sum = 0;
  size_t pos = 0;
  const size_t n = std::strlen(field);
  while ((pos = stats.find(field, pos)) != std::string::npos) {
    pos += n;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

struct RunResult {
  double secs = 0;
  Histogram lat;            // per-SET round-trip latency, ns
  uint64_t wait_timeouts = 0;
};

RunResult RunOnce(uint32_t wait_acks, uint32_t batch, uint64_t total) {
  ServerOptions popts;
  popts.nshards = 2;
  popts.shard.device_bytes = 128ull << 20;
  popts.shard.map_capacity = 1 << 14;
  popts.shard.batch = batch;
  popts.shard.wait_acks = wait_acks;
  popts.shard.wait_timeout_ms = 2000;
  std::string err;
  auto primary = Server::Start(popts, &err);
  if (primary == nullptr) {
    std::fprintf(stderr, "primary: %s\n", err.c_str());
    std::exit(1);
  }
  ServerOptions ropts = popts;
  ropts.shard.wait_acks = 0;  // followers never park
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary->port());
  std::vector<std::unique_ptr<Server>> replicas;
  std::vector<std::unique_ptr<Client>> rclients;
  for (int r = 0; r < 2; ++r) {
    replicas.push_back(Server::Start(ropts, &err));
    if (replicas.back() == nullptr) {
      std::fprintf(stderr, "replica: %s\n", err.c_str());
      std::exit(1);
    }
    rclients.push_back(
        Client::Connect("127.0.0.1", replicas.back()->port(), &err));
  }

  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  if (pc == nullptr) {
    std::fprintf(stderr, "connect: %s\n", err.c_str());
    std::exit(1);
  }
  // Both replicas must be streaming before the sweep, or the first writes
  // of a K=2 run burn the full wait timeout.
  const uint64_t want_subs = 2ull * popts.nshards;
  while (SumField(pc->Stats().value_or(""), "subs=") < want_subs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  RunResult res;
  Stopwatch sw;
  for (uint64_t i = 0; i < total; ++i) {
    const uint64_t t0 = NowNs();
    if (!pc->Set("key:" + std::to_string(i), "value:" + std::to_string(i))) {
      std::fprintf(stderr, "SET: %s\n", pc->last_error().c_str());
      std::exit(1);
    }
    res.lat.Record(NowNs() - t0);
  }
  res.secs = sw.ElapsedSec();
  res.wait_timeouts = SumField(pc->Stats().value_or(""), "wait_timeouts=");

  for (auto& rc : rclients) {
    if (rc != nullptr) {
      rc->Shutdown();
    }
  }
  for (auto& r : replicas) {
    r->Wait();
  }
  pc->Shutdown();
  primary->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — SET latency vs WAIT-K replication quorum (§8)\n");
  std::printf("K=0 replies after the local group commit; K>=1 parks the\n");
  std::printf("batch until K subscribers acked the sealed seq. Two replicas\n");
  std::printf("on loopback. JNVM_BENCH_SCALE=%g\n", BenchScale());
  std::printf("==============================================================\n");

  const uint64_t total = Scaled(2'000);
  std::printf("\n%-4s %-6s %10s %-44s %s\n", "K", "batch", "sets/s",
              "latency (us)", "wait_timeouts");
  for (const uint32_t batch : {1u, 16u}) {
    for (const uint32_t k : {0u, 1u, 2u}) {
      const RunResult r = RunOnce(k, batch, total);
      std::printf("%-4u %-6u %9.1fK %-44s %llu\n", k, batch,
                  static_cast<double>(total) / r.secs / 1e3,
                  r.lat.Summary().c_str(),
                  static_cast<unsigned long long>(r.wait_timeouts));
    }
  }
  std::printf(
      "\n(%llu closed-loop SETs over 2 shards. The K>=1 premium is one\n"
      "stream round-trip plus the follower's apply-batch commit; K=2 adds\n"
      "only the slower of two parallel acks. wait_timeouts must be 0 for\n"
      "the latency numbers to mean anything.)\n",
      static_cast<unsigned long long>(total));
  return 0;
}
