// Table 3 — throughput of accessing persistent 256 B blocks: J-NVM (proxy
// accessors) vs C (raw access), sequential and random, read and write.
//
// Paper result: J-NVM reaches near-native speed — at most 24% slower than
// C, except random reads at 2.8x (proxy translation + cache misses). Writes
// issue one pwb per 64 B cache line and one pfence per block, as in §5.3.5.
//
// The device latency model is disabled here: the table isolates the cost of
// the access *machinery* (what the paper's Unsafe-vs-native comparison
// measures), not the media.
#include <algorithm>

#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

class PBlock final : public core::PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        RegisterClass(core::MakeClassInfo<PBlock>("tab3.PBlock"));
    return info;
  }
  explicit PBlock(core::Resurrect) {}
  explicit PBlock(core::JnvmRuntime& rt) { AllocatePersistent(rt, Class(), 248); }

  void ReadAll(char* dst) const { ReadBytesField(0, dst, 248); }
  void WriteAll(const char* src) {
    WriteBytesField(0, src, 248);
    PwbField(0, 248);  // one pwb per cache line of the block
    Pfence();          // one pfence per full block
  }
};

double GBps(uint64_t bytes, double secs) {
  return static_cast<double>(bytes) / secs / 1e9;
}

}  // namespace

int main() {
  PrintHeader("Table 3 — 256 B block access throughput (GB/s), J-NVM vs C",
              "paper: J-NVM seq 3.21/0.74 R/W, rand 0.71/0.38; C seq "
              "4.01/0.78, rand 1.94/0.40 — J-NVM <=24% slower except random "
              "reads (2.8x)");

  const uint64_t n = Scaled(100'000);
  nvm::DeviceOptions dopts;
  dopts.size_bytes = n * 256 * 2 + (64ull << 20);  // latency model off
  nvm::PmemDevice dev(dopts);
  auto rt = core::JnvmRuntime::Format(&dev);

  std::vector<std::unique_ptr<PBlock>> objs;
  std::vector<nvm::Offset> payloads;
  objs.reserve(n);
  payloads.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    objs.push_back(std::make_unique<PBlock>(*rt));
    payloads.push_back(rt->heap().PayloadOf(objs.back()->addr()));
  }
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::vector<uint32_t> shuffled = order;
  Xorshift rng(7);
  for (uint32_t i = static_cast<uint32_t>(n) - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.NextBelow(i + 1)]);
  }

  char buf[248];
  memset(buf, 0x5a, sizeof(buf));
  const uint64_t total_bytes = n * 248;
  double results[2][4];  // [jnvm|c][seq-r, seq-w, rand-r, rand-w]

  for (int mode = 0; mode < 2; ++mode) {  // 0 = J-NVM proxies, 1 = C raw
    int col = 0;
    for (const auto* idx : {&order, &shuffled}) {
      {  // read
        Stopwatch sw;
        for (const uint32_t i : *idx) {
          if (mode == 0) {
            objs[i]->ReadAll(buf);
          } else {
            dev.ReadBytes(payloads[i], buf, 248);
          }
        }
        results[mode][col] = GBps(total_bytes, sw.ElapsedSec());
      }
      {  // write (pwb per line + pfence per block, §5.3.5)
        Stopwatch sw;
        for (const uint32_t i : *idx) {
          if (mode == 0) {
            objs[i]->WriteAll(buf);
          } else {
            dev.WriteBytes(payloads[i], buf, 248);
            dev.PwbRange(payloads[i], 248);
            dev.Pfence();
          }
        }
        results[mode][col + 1] = GBps(total_bytes, sw.ElapsedSec());
      }
      col += 2;
    }
  }

  std::printf("\n%-8s %14s %14s %14s %14s\n", "", "Seq Read", "Seq Write",
              "Rand Read", "Rand Write");
  std::printf("%-8s %11.2f GB/s %11.2f GB/s %11.2f GB/s %11.2f GB/s\n", "J-NVM",
              results[0][0], results[0][1], results[0][2], results[0][3]);
  std::printf("%-8s %11.2f GB/s %11.2f GB/s %11.2f GB/s %11.2f GB/s\n", "C",
              results[1][0], results[1][1], results[1][2], results[1][3]);
  std::printf("%-8s %13.2fx %13.2fx %13.2fx %13.2fx   (C / J-NVM)\n", "ratio",
              results[1][0] / results[0][0], results[1][1] / results[0][1],
              results[1][2] / results[0][2], results[1][3] / results[0][3]);
  std::printf("\n(%llu blocks of 256 B; latency model disabled)\n",
              static_cast<unsigned long long>(n));
  return 0;
}
