// Figure 7 — "The YCSB benchmark": throughput of workloads A, B, C, D, F
// on the four persistent backends (J-PDT, J-PFA, FS, PCJ).
//
// Paper result: J-PDT systematically outperforms everything; ≥10.5× faster
// than FS (3.6× in workload D), 13.8×–22.7× faster than PCJ; J-PFA between
// J-PDT and the rest (J-PDT up to 65% faster than J-PFA).
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 7 — YCSB throughput (Kops/s) per backend",
              "J-PDT ~ 350-550 Kops/s; >= 10.5x FS (3.6x on D); 13.8-22.7x PCJ; "
              "J-PDT up to 65% faster than J-PFA");

  BenchConfig cfg;
  cfg.records = Scaled(8'000);
  const uint64_t ops = Scaled(30'000);

  const BackendKind kinds[] = {BackendKind::kJpdt, BackendKind::kJpfa,
                               BackendKind::kFs, BackendKind::kPcj};
  const ycsb::WorkloadSpec bases[] = {ycsb::WorkloadSpec::A(), ycsb::WorkloadSpec::B(),
                                      ycsb::WorkloadSpec::C(), ycsb::WorkloadSpec::D(),
                                      ycsb::WorkloadSpec::F()};

  std::printf("\n%-10s", "workload");
  for (const BackendKind k : kinds) {
    std::printf("%12s", Name(k));
  }
  std::printf("%14s%12s\n", "J-PDT/FS", "J-PDT/PCJ");

  for (const auto& base : bases) {
    double tput[4] = {};
    int i = 0;
    for (const BackendKind k : kinds) {
      auto b = MakeBundle(k, cfg);
      const auto spec = SpecFor(cfg, base);
      ycsb::LoadPhase(b->kv.get(), spec);
      const auto r = ycsb::RunPhase(b->kv.get(), spec, ops, 1, 42);
      tput[i++] = r.throughput_ops_s;
    }
    std::printf("%-10s", base.name.c_str());
    for (int j = 0; j < 4; ++j) {
      std::printf("%10.1fK", tput[j] / 1e3);
    }
    std::printf("%13.1fx%11.1fx\n", tput[0] / tput[2], tput[0] / tput[3]);
  }
  std::printf("\n(records=%llu, ops=%llu per cell, single-threaded client)\n",
              static_cast<unsigned long long>(cfg.records),
              static_cast<unsigned long long>(ops));
  return 0;
}
