// Figure 7 — "The YCSB benchmark": throughput of workloads A, B, C, D, F
// on the four persistent backends (J-PDT, J-PFA, FS, PCJ).
//
// Paper result: J-PDT systematically outperforms everything; ≥10.5× faster
// than FS (3.6× in workload D), 13.8×–22.7× faster than PCJ; J-PFA between
// J-PDT and the rest (J-PDT up to 65% faster than J-PFA).
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 7 — YCSB throughput (Kops/s) per backend",
              "J-PDT ~ 350-550 Kops/s; >= 10.5x FS (3.6x on D); 13.8-22.7x PCJ; "
              "J-PDT up to 65% faster than J-PFA");

  BenchConfig cfg;
  cfg.records = Scaled(8'000);
  const uint64_t ops = Scaled(30'000);

  const BackendKind kinds[] = {BackendKind::kJpdt, BackendKind::kJpfa,
                               BackendKind::kFs, BackendKind::kPcj};
  const ycsb::WorkloadSpec bases[] = {ycsb::WorkloadSpec::A(), ycsb::WorkloadSpec::B(),
                                      ycsb::WorkloadSpec::C(), ycsb::WorkloadSpec::D(),
                                      ycsb::WorkloadSpec::F()};

  std::printf("\n%-10s", "workload");
  for (const BackendKind k : kinds) {
    std::printf("%12s", Name(k));
  }
  std::printf("%14s%12s\n", "J-PDT/FS", "J-PDT/PCJ");

  // Per-backend op counters and cache hit rates accumulated across all
  // workloads — sanity-checks that each cell really exercised the mix it
  // claims (and that the J-NVM backends stay uncached).
  store::OpStats op_totals[4] = {};
  store::CacheStats cache_totals[4] = {};

  for (const auto& base : bases) {
    double tput[4] = {};
    int i = 0;
    for (const BackendKind k : kinds) {
      auto b = MakeBundle(k, cfg);
      const auto spec = SpecFor(cfg, base);
      ycsb::LoadPhase(b->kv.get(), spec);
      const auto r = ycsb::RunPhase(b->kv.get(), spec, ops, 1, 42);
      const store::OpStats os = b->backend->stats();
      op_totals[i].puts += os.puts;
      op_totals[i].gets += os.gets;
      op_totals[i].get_misses += os.get_misses;
      op_totals[i].updates += os.updates;
      op_totals[i].deletes += os.deletes;
      op_totals[i].bytes_written += os.bytes_written;
      op_totals[i].bytes_read += os.bytes_read;
      const store::CacheStats cs = b->kv->cache_stats();
      cache_totals[i].hits += cs.hits;
      cache_totals[i].misses += cs.misses;
      tput[i++] = r.throughput_ops_s;
    }
    std::printf("%-10s", base.name.c_str());
    for (int j = 0; j < 4; ++j) {
      std::printf("%10.1fK", tput[j] / 1e3);
    }
    std::printf("%13.1fx%11.1fx\n", tput[0] / tput[2], tput[0] / tput[3]);
  }

  std::printf("\nbackend op counters (all workloads):\n");
  std::printf("%-10s%12s%12s%12s%12s%12s%12s\n", "backend", "puts", "gets",
              "updates", "MB written", "MB read", "cache hit%");
  for (int j = 0; j < 4; ++j) {
    const uint64_t lookups = cache_totals[j].hits + cache_totals[j].misses;
    const double hit_pct =
        lookups == 0 ? 0.0 : 100.0 * cache_totals[j].hits / lookups;
    std::printf("%-10s%12llu%12llu%12llu%12.1f%12.1f%11.1f%%\n", Name(kinds[j]),
                static_cast<unsigned long long>(op_totals[j].puts),
                static_cast<unsigned long long>(op_totals[j].gets),
                static_cast<unsigned long long>(op_totals[j].updates),
                op_totals[j].bytes_written / 1e6, op_totals[j].bytes_read / 1e6,
                hit_pct);
  }

  std::printf("\n(records=%llu, ops=%llu per cell, single-threaded client)\n",
              static_cast<unsigned long long>(cfg.records),
              static_cast<unsigned long long>(ops));
  return 0;
}
