// Figure 11 — recovery time with a TPC-B-like workload: a bank serves
// random transfers, is killed, restarts, and resumes. Reported per backend:
// pre-crash throughput, restart latency (its recovery breakdown), and
// post-recovery throughput, plus a throughput timeline.
//
// Paper result (10M accounts, crash at t=60 s): Volatile resumes after
// 2.4 s (from a blank state); J-PFA needs 8.5 s (graph recovery over the
// accounts), J-PFA-nogc 2.8 s less (block scan instead of the traversal);
// FS needs 28.8 s (index rebuild + eager reload of the 10% cache).
#include "bench/bench_util.h"
#include "src/tpcb/bank.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

constexpr double kRunSeconds = 2.0;       // per phase (paper: 60 s)
constexpr double kBucketSeconds = 0.25;   // timeline resolution

struct Timeline {
  std::vector<double> ops_per_s;  // one entry per bucket
  double seconds = 0;
  uint64_t total_ops = 0;
};

Timeline RunTransfers(tpcb::Bank* bank, uint64_t accounts, double seconds,
                      uint64_t seed) {
  Timeline tl;
  Xorshift rng(seed);
  Stopwatch sw;
  uint64_t bucket_ops = 0;
  double bucket_start = 0;
  while (true) {
    const double now = sw.ElapsedSec();
    if (now >= seconds) {
      break;
    }
    if (now - bucket_start >= kBucketSeconds) {
      tl.ops_per_s.push_back(static_cast<double>(bucket_ops) / (now - bucket_start));
      bucket_start = now;
      bucket_ops = 0;
    }
    bank->Transfer(static_cast<int64_t>(rng.NextBelow(accounts)),
                   static_cast<int64_t>(rng.NextBelow(accounts)),
                   static_cast<int64_t>(rng.NextBelow(100)));
    ++bucket_ops;
    ++tl.total_ops;
  }
  tl.seconds = sw.ElapsedSec();
  return tl;
}

double Avg(const Timeline& tl) {
  return tl.seconds > 0 ? static_cast<double>(tl.total_ops) / tl.seconds : 0;
}

void Report(const char* name, const Timeline& before, double restart_s,
            const Timeline& after, const char* restart_note) {
  std::printf("%-11s pre-crash %8.1fK ops/s | restart %7.3fs (%s) | "
              "post %8.1fK ops/s\n",
              name, Avg(before) / 1e3, restart_s, restart_note, Avg(after) / 1e3);
  std::printf("            timeline (Kops/s per %.2fs):", kBucketSeconds);
  for (const double v : before.ops_per_s) {
    std::printf(" %.0f", v / 1e3);
  }
  std::printf(" | CRASH+%.2fs |", restart_s);
  for (const double v : after.ops_per_s) {
    std::printf(" %.0f", v / 1e3);
  }
  std::printf("\n");
}

void RunJpfa(uint64_t accounts, bool graph_recovery) {
  const uint64_t bytes = accounts * 1024 * 3 + (128ull << 20);
  auto dev = std::make_unique<nvm::PmemDevice>(OptaneLike(bytes));
  Timeline before;
  {
    auto rt = core::JnvmRuntime::Format(dev.get());
    tpcb::JpfaBank bank(rt.get());
    bank.CreateAccounts(accounts, 1000);
    rt->Psync();
    before = RunTransfers(&bank, accounts, kRunSeconds, 1);
    rt->Abandon();  // SIGKILL: no clean shutdown
  }
  Stopwatch restart;
  core::RuntimeOptions opts;
  opts.graph_recovery = graph_recovery;
  auto rt = core::JnvmRuntime::Open(dev.get(), opts);
  tpcb::JpfaBank bank(rt.get());  // resurrect the account map (mirror rebuild)
  const double restart_s = restart.ElapsedSec();
  const Timeline after = RunTransfers(&bank, accounts, kRunSeconds, 2);

  char note[96];
  std::snprintf(note, sizeof(note), "%s, %llu objs traversed",
                graph_recovery ? "graph GC" : "block scan",
                static_cast<unsigned long long>(
                    rt->recovery_report().traversed_objects));
  Report(graph_recovery ? "J-PFA" : "J-PFA-nogc", before, restart_s, after, note);

  // Sanity: no money created or destroyed by the crash.
  int64_t total = 0;
  for (uint64_t i = 0; i < accounts; ++i) {
    total += bank.Balance(static_cast<int64_t>(i));
  }
  JNVM_CHECK(total == static_cast<int64_t>(accounts) * 1000);
}

void RunFs(uint64_t accounts) {
  const uint64_t bytes = accounts * 512 + (128ull << 20);
  auto dev = std::make_unique<nvm::PmemDevice>(OptaneLike(bytes));
  auto simfs = std::make_unique<fs::NvmFs>(dev.get(), 0, bytes, DaxSyscall());
  store::StoreOptions sopts;
  sopts.cache_ratio = 0.10;
  sopts.expected_records = accounts;

  Timeline before;
  {
    store::FsBackend backend(simfs.get(), "FS", store::SerCostModel::JavaLike());
    gcsim::ManagedHeap gc(gcsim::GcOptions{});
    store::KvStore kv(&backend, &gc, sopts);
    tpcb::FsBank bank(&kv);
    bank.CreateAccounts(accounts, 1000);
    before = RunTransfers(&bank, accounts, kRunSeconds, 1);
  }  // killed

  Stopwatch restart;
  store::FsBackend backend(simfs.get(), "FS", store::SerCostModel::JavaLike());
  const size_t found = backend.RebuildIndex();
  gcsim::ManagedHeap gc(gcsim::GcOptions{});
  store::KvStore kv(&backend, &gc, sopts);
  // Infinispan reloads its cache eagerly on restart (the dominant cost in
  // the paper's 28.8 s).
  const size_t reloaded = kv.WarmCache(backend.Keys());
  const double restart_s = restart.ElapsedSec();
  tpcb::FsBank bank(&kv);
  const Timeline after = RunTransfers(&bank, accounts, kRunSeconds, 2);

  char note[96];
  std::snprintf(note, sizeof(note), "index rebuild %zu rec, cache reload %zu",
                found, reloaded);
  Report("FS", before, restart_s, after, note);
}

void RunVolatile(uint64_t accounts) {
  Timeline before;
  {
    tpcb::VolatileBank bank;
    bank.CreateAccounts(accounts, 1000);
    before = RunTransfers(&bank, accounts, kRunSeconds, 1);
  }  // killed: DRAM gone
  Stopwatch restart;
  tpcb::VolatileBank bank;  // blank state; accounts recreated on demand at 0
  const double restart_s = restart.ElapsedSec();
  const Timeline after = RunTransfers(&bank, accounts, kRunSeconds, 2);
  Report("Volatile", before, restart_s, after, "blank state, accounts recreated");
}

}  // namespace

int main() {
  PrintHeader("Figure 11 — TPC-B recovery timeline (crash mid-run, restart)",
              "restart latency: Volatile 2.4s < J-PFA-nogc (J-PFA - 2.8s) < "
              "J-PFA 8.5s < FS 28.8s; throughput recovers to nominal");
  const uint64_t accounts = Scaled(60'000);
  std::printf("\naccounts=%llu x 140 B, %gs run per phase\n\n",
              static_cast<unsigned long long>(accounts), kRunSeconds);
  RunVolatile(accounts);
  RunJpfa(accounts, /*graph_recovery=*/false);  // J-PFA-nogc
  RunJpfa(accounts, /*graph_recovery=*/true);   // J-PFA
  RunFs(accounts);
  return 0;
}
