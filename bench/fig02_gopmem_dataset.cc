// Figure 2 — YCSB-F on the go-pmem *integrated* design: the persistent
// dataset lives inside the garbage-collected heap, so every collection
// traverses all persistent objects. Completion / compute / GC time as the
// dataset doubles from run to run, with a fixed operation count.
//
// Paper result: compute time is stable (same op count); GC time grows with
// the dataset until it reaches 67% of CPU time; completion is 3.4x worse at
// 151.68 GB than at 0.30 GB (go-pmem collects every 10 GB of allocation).
#include "bench/bench_util.h"
#include "src/store/volatile_backend.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 2 — YCSB-F vs persistent dataset size (integrated design)",
              "compute flat, GC grows to ~67% of CPU time; completion x3.4 "
              "from the smallest to the largest dataset");

  const uint64_t ops = Scaled(40'000);
  // go-pmem forces a collection every 10 GB of allocation; we scale the
  // trigger with the ops volume the same way (fixed, dataset-independent).
  const uint64_t gc_trigger = 4ull << 20;

  std::printf("\n%-12s %-10s %12s %10s %10s %8s %6s\n", "dataset", "(records)",
              "completion", "compute", "gc", "gc%", "gcs");
  double first_completion = 0;
  double last_completion = 0;
  for (uint64_t records = Scaled(2'000); records <= Scaled(128'000); records *= 2) {
    // The integrated design: persistent records are ordinary collected
    // objects — exactly the VolatileBackend representation, but the heap is
    // "NVMM" conceptually. One node + 10 field children per record.
    gcsim::ManagedHeap heap(gcsim::GcOptions{.gc_trigger_bytes = gc_trigger});
    store::VolatileBackend backend(&heap);
    store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    store::KvStore kv(&backend, nullptr, sopts);

    ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::F();
    spec.record_count = records;
    spec.fields = 10;
    spec.field_len = 100;
    ycsb::LoadPhase(&kv, spec);
    heap.Collect();  // settle the load phase, like go-pmem's post-load cycle

    // YCSB-F against a Redis-like store: the read-modify-write SETs a whole
    // new value object (go-redis-pmem semantics) — each rmw allocates a
    // fresh record in the collected heap.
    const uint64_t gc_before = heap.stats().gc_ns_total;
    const uint64_t gcs_before = heap.stats().collections;
    Xorshift rng(42);
    ZipfianGenerator zipf(10'000'000'000ull, 0.99, 7);
    Stopwatch sw;
    store::Record tmp;
    for (uint64_t i = 0; i < ops; ++i) {
      const uint64_t key = Mix64(zipf.Next()) % records;
      if (rng.NextDouble() < 0.5) {
        kv.Read(ycsb::KeyFor(key), &tmp);
      } else {
        kv.Read(ycsb::KeyFor(key), &tmp);  // the "read" half of the rmw
        kv.Put(ycsb::KeyFor(key),
               store::SyntheticRecord(key, i, spec.fields, spec.field_len));
      }
    }
    const double seconds = sw.ElapsedSec();
    const double gc_s =
        static_cast<double>(heap.stats().gc_ns_total - gc_before) / 1e9;
    const uint64_t gcs = heap.stats().collections - gcs_before;
    std::printf("%-12s %-10llu %11.2fs %9.2fs %9.2fs %7.1f%% %6llu\n",
                HumanBytes(records * 1048).c_str(),
                static_cast<unsigned long long>(records), seconds,
                seconds - gc_s, gc_s, 100.0 * gc_s / seconds,
                static_cast<unsigned long long>(gcs));
    if (first_completion == 0) {
      first_completion = seconds;
    }
    last_completion = seconds;
  }
  std::printf("\ncompletion largest/smallest = %.1fx (paper: 3.4x)\n",
              last_completion / first_completion);
  std::printf("(ops=%llu fixed across runs; GC every %s of allocation)\n",
              static_cast<unsigned long long>(ops),
              HumanBytes(gc_trigger).c_str());
  return 0;
}
