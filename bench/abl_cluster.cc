// Ablation — cluster-plane routing overhead and live-migration impact
// (DESIGN.md §10).
//
// The cluster plane inserts a slot lookup into every key command on the
// server and a slot-cache hop into every command on the client, and a live
// slot migration runs a copy/catch-up/handoff pipeline underneath ongoing
// traffic. This ablation measures (a) the steady-state routing tax — the
// same synchronous SET+GET workload against a plain node, against a
// cluster-enabled node via a direct client, and through the
// redirect-following ClusterClient with a warm slot cache — and (b) what a
// live migration of half the slot space costs the foreground: client
// throughput before vs during the handoff, the migration's wall time, and
// how many explicit redirects (-MOVED / -ASK / -TRYAGAIN) the client
// absorbed instead of surfacing an error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster_client.h"
#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace jnvm;
using namespace jnvm::server;
using cluster::ClusterClient;
using cluster::ClusterClientOptions;
using cluster::ClusterState;
using cluster::kNumSlots;

namespace {

ServerOptions NodeOpts(bool clustered, uint32_t self) {
  ServerOptions o;
  o.nshards = 2;
  o.shard.device_bytes = 128ull << 20;
  o.shard.map_capacity = 1 << 14;
  o.cluster = clustered;
  o.cluster_meta.self = self;
  return o;
}

std::unique_ptr<Server> MustStart(const ServerOptions& o) {
  std::string err;
  auto s = Server::Start(o, &err);
  if (s == nullptr) {
    std::fprintf(stderr, "server: %s\n", err.c_str());
    std::exit(1);
  }
  return s;
}

// One synchronous SET + GET per iteration; returns ops/s (2 ops per iter).
template <typename SetFn, typename GetFn>
double TimedLoop(uint64_t iters, SetFn set, GetFn get) {
  Stopwatch sw;
  for (uint64_t i = 0; i < iters; ++i) {
    const std::string key = "key:" + std::to_string(i);
    if (!set(key, "value:" + std::to_string(i)) || !get(key)) {
      std::fprintf(stderr, "op failed at %llu\n",
                   static_cast<unsigned long long>(i));
      std::exit(1);
    }
  }
  return static_cast<double>(2 * iters) / sw.ElapsedSec();
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — cluster routing overhead + live migration (§10)\n");
  std::printf("Slot lookup per command on the server, slot cache per command\n");
  std::printf("on the client, and a half-keyspace handoff under load.\n");
  std::printf("JNVM_BENCH_SCALE=%g\n", BenchScale());
  std::printf("==============================================================\n");

  const uint64_t iters = Scaled(10'000);
  std::string err;

  // ---- (a) Routing tax ------------------------------------------------------
  std::printf("\nrouting tax (%llu sync SET+GET pairs, ops/s):\n",
              static_cast<unsigned long long>(iters));
  {
    auto plain = MustStart(NodeOpts(false, 0));
    auto c = Client::Connect("127.0.0.1", plain->port(), &err);
    const double ops = TimedLoop(
        iters, [&](const std::string& k, const std::string& v) { return c->Set(k, v); },
        [&](const std::string& k) { return c->Get(k).has_value(); });
    std::printf("  %-34s %10.1fK\n", "plain node, direct client", ops / 1e3);
    c->Shutdown();
    plain->Wait();
  }
  {
    auto node = MustStart(NodeOpts(true, 0));
    ClusterState* cs = node->cluster_state();
    const std::string addr = "127.0.0.1:" + std::to_string(node->port());
    if (!cs->Meet(0, addr, &err) ||
        !cs->AssignRange(0, kNumSlots - 1, 0, &err)) {
      std::fprintf(stderr, "bootstrap: %s\n", err.c_str());
      return 1;
    }
    auto c = Client::Connect("127.0.0.1", node->port(), &err);
    const double direct = TimedLoop(
        iters, [&](const std::string& k, const std::string& v) { return c->Set(k, v); },
        [&](const std::string& k) { return c->Get(k).has_value(); });
    std::printf("  %-34s %10.1fK\n", "cluster node, direct client", direct / 1e3);

    ClusterClientOptions copts;
    copts.seeds = {addr};
    auto cc = ClusterClient::Connect(copts, &err);
    if (cc == nullptr) {
      std::fprintf(stderr, "cluster client: %s\n", err.c_str());
      return 1;
    }
    const double routed = TimedLoop(
        iters, [&](const std::string& k, const std::string& v) { return cc->Set(k, v); },
        [&](const std::string& k) { return cc->Get(k).has_value(); });
    std::printf("  %-34s %10.1fK  (warm slot cache)\n",
                "cluster node, ClusterClient", routed / 1e3);
    c->Shutdown();
    node->Wait();
  }

  // ---- (b) Live migration under load ---------------------------------------
  std::printf("\nlive migration of slots [0, %u] under load:\n", kNumSlots / 2 - 1);
  {
    auto n0 = MustStart(NodeOpts(true, 0));
    auto n1 = MustStart(NodeOpts(true, 1));
    const std::string a0 = "127.0.0.1:" + std::to_string(n0->port());
    const std::string a1 = "127.0.0.1:" + std::to_string(n1->port());
    for (ClusterState* cs : {n0->cluster_state(), n1->cluster_state()}) {
      if (!cs->Meet(0, a0, &err) || !cs->Meet(1, a1, &err) ||
          !cs->AssignRange(0, kNumSlots - 1, 0, &err)) {
        std::fprintf(stderr, "bootstrap: %s\n", err.c_str());
        return 1;
      }
    }
    ClusterClientOptions copts;
    copts.seeds = {a0};
    auto cc = ClusterClient::Connect(copts, &err);
    if (cc == nullptr) {
      std::fprintf(stderr, "cluster client: %s\n", err.c_str());
      return 1;
    }
    // Preload so the copy phase has real volume to move.
    for (uint64_t i = 0; i < iters; ++i) {
      const std::string k = "key:" + std::to_string(i);
      if (!cc->Set(k, "value:" + std::to_string(i))) {
        std::fprintf(stderr, "preload: %s\n", cc->last_error().c_str());
        return 1;
      }
    }
    const double before = TimedLoop(
        iters, [&](const std::string& k, const std::string& v) { return cc->Set(k, v); },
        [&](const std::string& k) { return cc->Get(k).has_value(); });

    auto admin = Client::Connect("127.0.0.1", n0->port(), &err);
    RespReply r;
    Stopwatch mig;
    if (!admin->Roundtrip({"CLUSTER", "SETSLOT", "MIGRATE", "0",
                           std::to_string(kNumSlots / 2 - 1), "1"},
                          &r) ||
        r.type != RespReply::Type::kSimple) {
      std::fprintf(stderr, "SETSLOT MIGRATE: %s\n", r.str.c_str());
      return 1;
    }
    // Foreground traffic racing the copy/catch-up/handoff pipeline; loop
    // until the migrator finishes so the measurement spans the whole window.
    uint64_t during_ops = 0;
    Stopwatch during;
    while (n0->migrator()->busy()) {
      const std::string k = "key:" + std::to_string(during_ops % iters);
      if (!cc->Set(k, "v2:" + std::to_string(during_ops)) ||
          !cc->Get(k).has_value()) {
        std::fprintf(stderr, "op during migration: %s\n",
                     cc->last_error().c_str());
        return 1;
      }
      during_ops += 2;
    }
    const double during_secs = during.ElapsedSec();
    const double mig_secs = mig.ElapsedSec();

    const auto& st = cc->stats();
    std::printf("  %-34s %10.1fK\n", "ops/s before", before / 1e3);
    std::printf("  %-34s %10.1fK\n", "ops/s during",
                static_cast<double>(during_ops) / during_secs / 1e3);
    std::printf("  %-34s %10.2f s  (%llu keys preloaded)\n", "migration wall time",
                mig_secs, static_cast<unsigned long long>(iters));
    std::printf("  redirects absorbed: moved=%llu ask=%llu tryagain=%llu "
                "refreshes=%llu\n",
                static_cast<unsigned long long>(st.moved_redirects),
                static_cast<unsigned long long>(st.ask_redirects),
                static_cast<unsigned long long>(st.tryagain_retries),
                static_cast<unsigned long long>(st.slot_refreshes));
    admin->Shutdown();
    n0->Wait();
    auto c1 = Client::Connect("127.0.0.1", n1->port(), &err);
    if (c1 != nullptr) {
      c1->Shutdown();
    }
    n1->Wait();
  }

  std::printf(
      "\n(Synchronous single-connection loops over loopback: the routing tax\n"
      "is the per-op delta between the three rows; the migration rows show\n"
      "the foreground cost of a half-keyspace handoff — the client absorbs\n"
      "every redirect, the application sees only slower ops.)\n");
  return 0;
}
