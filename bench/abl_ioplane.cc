// Ablation — multi-core I/O plane (DESIGN.md §7).
//
// One server, a grid of {conns × loops × shards × poller}: every client
// thread owns one connection and drives a pipelined 50/50 SET/GET mix, so
// the bottleneck under test is the event-loop plane itself (readiness
// notification, parse, submit, completion routing, flush) rather than the
// shards. With --loops=N connections spread across N event-loop threads via
// SO_REUSEPORT; the io_uring rows additionally exercise the batched-SENDMSG
// flush path (one ring submission flushes every dirty connection), reported
// as batch_flushes in the final column.
//
// NOTE: loop scaling needs hardware parallelism. On a single-core host all
// loops time-share one CPU and the loops column flattens toward 1x — the
// table is still useful there as a regression check that the multi-loop
// plane costs nothing when cores are absent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/server/client.h"
#include "src/server/poller.h"
#include "src/server/server.h"
#include "src/server/shard.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

constexpr uint32_t kPipeline = 32;

ServerOptions BaseOpts(uint32_t shards, uint32_t loops,
                       const std::string& poller) {
  ServerOptions o;
  o.nshards = shards;
  o.shard.device_bytes = 128ull << 20;
  o.shard.map_capacity = 1 << 14;
  o.shard.batch = 16;
  o.loops = loops;
  o.poller = poller;
  return o;
}

uint64_t StatsField(Client& c, const char* field) {
  const std::string stats = c.Stats().value_or("");
  const size_t pos = stats.find(field);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(stats.c_str() + pos + std::strlen(field), nullptr, 10);
}

// One client thread: `rounds` pipelines of kPipeline mixed SET/GET ops.
void Worker(uint16_t port, uint64_t keys, uint64_t rounds, uint64_t seed,
            uint64_t* ops_out) {
  std::string err;
  auto c = Client::Connect("127.0.0.1", port, &err);
  if (c == nullptr) {
    std::fprintf(stderr, "worker connect: %s\n", err.c_str());
    std::exit(1);
  }
  Xorshift rng(seed);
  std::vector<RespReply> replies;
  uint64_t ops = 0;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < kPipeline; ++i) {
      const std::string k = "k:" + std::to_string(rng.NextBelow(keys));
      if (rng.NextBelow(2) == 0) {
        c->PipeSet(k, "v:" + std::to_string(r));
      } else {
        c->PipeGet(k);
      }
    }
    replies.clear();
    if (!c->Sync(&replies)) {
      std::fprintf(stderr, "worker sync: %s\n", c->last_error().c_str());
      std::exit(1);
    }
    for (const RespReply& rep : replies) {
      if (rep.type == RespReply::Type::kError) {
        std::fprintf(stderr, "worker reply: %s\n", rep.str.c_str());
        std::exit(1);
      }
    }
    ops += kPipeline;
  }
  *ops_out = ops;
}

struct RunResult {
  double ops_per_sec = 0;
  uint64_t batch_flushes = 0;
  std::string poller;  // backend actually in use (uring may fall back)
};

RunResult RunOnce(uint32_t conns, uint32_t loops, uint32_t shards,
                  const std::string& poller, uint64_t keys, uint64_t rounds) {
  std::string err;
  auto server = Server::Start(BaseOpts(shards, loops, poller), &err);
  if (server == nullptr) {
    std::fprintf(stderr, "server: %s\n", err.c_str());
    std::exit(1);
  }

  std::vector<uint64_t> ops(conns, 0);
  Stopwatch sw;
  {
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < conns; ++t) {
      workers.emplace_back(Worker, server->port(), keys, rounds,
                           0xab1e + t, &ops[t]);
    }
    for (auto& th : workers) {
      th.join();
    }
  }
  const double secs = sw.ElapsedSec();

  RunResult res;
  res.poller = server->poller_name();
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  res.ops_per_sec = secs > 0 ? static_cast<double>(total) / secs : 0;

  auto c = Client::Connect("127.0.0.1", server->port(), &err);
  if (c != nullptr) {
    res.batch_flushes = StatsField(*c, "batch_flushes=");
    c->Shutdown();
  }
  server->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — multi-core I/O plane: conns x loops x shards x "
              "poller (§7)\n");
  std::printf("pipeline %u, 50/50 SET/GET; ops/s aggregated over conns\n",
              kPipeline);
  std::printf("JNVM_BENCH_SCALE=%g  hw_threads=%u\n", BenchScale(),
              std::thread::hardware_concurrency());
  std::printf("==============================================================\n");

  const uint64_t keys = Scaled(4'000);
  const uint64_t rounds = Scaled(200);

  std::vector<std::string> pollers = {"epoll"};
  if (IoUringSupported()) {
    pollers.push_back("uring");
  } else {
    std::printf("(io_uring unavailable: uring rows skipped, Poller::Create "
                "would fall back to epoll)\n");
  }

  double base = 0;  // conns=8 loops=1 shards=4 epoll row
  std::printf("\n%-7s %6s %6s %7s %12s %8s %14s\n", "poller", "conns",
              "loops", "shards", "ops/s", "scale", "batch_flushes");
  for (const std::string& poller : pollers) {
    for (uint32_t shards : {1u, 4u}) {
      for (uint32_t loops : {1u, 2u, 4u}) {
        for (uint32_t conns : {2u, 8u}) {
          const RunResult r =
              RunOnce(conns, loops, shards, poller, keys, rounds);
          if (base == 0) {
            base = r.ops_per_sec;
          }
          std::printf("%-7s %6u %6u %7u %11.1fK %7.2fx %14llu%s\n",
                      r.poller.c_str(), conns, loops, shards,
                      r.ops_per_sec / 1e3,
                      base > 0 ? r.ops_per_sec / base : 0.0,
                      static_cast<unsigned long long>(r.batch_flushes),
                      r.poller != poller ? "  (fallback!)" : "");
        }
      }
    }
  }
  std::printf(
      "\n(scale is relative to the first row. The loops dimension should\n"
      "climb with available cores; batch_flushes > 0 on uring rows proves\n"
      "the batched-SENDMSG flush path carried traffic. A `(fallback!)`\n"
      "marker means the requested poller was unavailable at runtime.)\n");
  return 0;
}
