// Ablation — bounded recovery & bootstrap (DESIGN.md §11).
//
// Two claims ride on the fuzzy checkpoint pair [ckpt_begin, ckpt_end]:
//
//  1. *The recovery input is bounded.* Under J-NVM the store is durable in
//     place, so restart replay was always tail-sized — but without a
//     checkpoint the replication log retains the full history, and the
//     open-time segment scan plus the log's heap footprint grow with it.
//     CKPT truncates sealed segments below the durable ckpt_begin: the
//     retained log (and the idempotent replay range past begin) tracks the
//     post-checkpoint tail no matter how large the store grew.
//  2. *Rejoin is bounded by the divergence, not the heap.* A restarted
//     replica advertises per-segment digests (REPLDIFF); the primary
//     verifies them and ships only the records past its truncation
//     watermark. A fresh replica with no history still pays the full
//     REPLSNAP bootstrap — that contrast is the point.
//
// Both tables sweep the key count ~10x and hold the tail fixed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

constexpr uint64_t kTail = 256;      // post-checkpoint / post-detach writes
constexpr uint64_t kPipeline = 64;

// Sums every occurrence of `field` in a STATS body (per-shard lines).
uint64_t SumField(const std::string& stats, const char* field) {
  uint64_t sum = 0;
  size_t pos = 0;
  const size_t n = std::strlen(field);
  while ((pos = stats.find(field, pos)) != std::string::npos) {
    pos += n;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

std::string Val(uint64_t i) {
  std::string v = "value:" + std::to_string(i);
  v.resize(64, 'x');  // fat enough that store size dominates the tail
  return v;
}

void Load(Client& c, uint64_t from, uint64_t to) {
  std::vector<RespReply> replies;
  for (uint64_t i = from; i < to; i += kPipeline) {
    for (uint64_t j = i; j < i + kPipeline && j < to; ++j) {
      c.PipeSet("key:" + std::to_string(j), Val(j));
    }
    replies.clear();
    if (!c.Sync(&replies)) {
      std::fprintf(stderr, "pipeline: %s\n", c.last_error().c_str());
      std::exit(1);
    }
  }
}

void Ckpt(Client& c) {
  RespReply r;
  if (!c.Roundtrip({"CKPT"}, &r) || r.type != RespReply::Type::kSimple) {
    std::fprintf(stderr, "CKPT: %s\n", r.str.c_str());
    std::exit(1);
  }
}

ServerOptions BaseOpts(const std::string& image_base) {
  ServerOptions o;
  o.nshards = 2;
  o.shard.device_bytes = 256ull << 20;
  o.shard.map_capacity = 1 << 16;
  // Retain the full history: the no-checkpoint columns must pay for it.
  o.shard.repl_segment_bytes = 1u << 20;
  o.shard.repl_max_segments = 24;
  o.shard.image_base = image_base;
  return o;
}

void RemoveImages(const ServerOptions& o) {
  for (uint32_t i = 0; i < o.nshards; ++i) {
    std::filesystem::remove(o.shard.image_base + ".shard" + std::to_string(i) +
                            ".img");
  }
}

std::unique_ptr<Server> MustStart(const ServerOptions& o, double* secs) {
  std::string err;
  Stopwatch sw;
  auto s = Server::Start(o, &err);
  if (secs != nullptr) {
    *secs = sw.ElapsedSec();
  }
  if (s == nullptr) {
    std::fprintf(stderr, "start: %s\n", err.c_str());
    std::exit(1);
  }
  return s;
}

std::unique_ptr<Client> MustConnect(Server& s) {
  std::string err;
  auto c = Client::Connect("127.0.0.1", s.port(), &err);
  if (c == nullptr) {
    std::fprintf(stderr, "connect: %s\n", err.c_str());
    std::exit(1);
  }
  return c;
}

// ---- Claim 1: retained log and replay bounded by the checkpoint -------------

struct RecoveryResult {
  uint64_t log_full_kb = 0;     // log footprint with the whole history
  double restart_full_ms = 0;
  uint64_t replayed_full = 0;
  uint64_t log_ckpt_kb = 0;     // footprint after CKPT + kTail writes
  double restart_ckpt_ms = 0;
  uint64_t replayed_ckpt = 0;
};

RecoveryResult RunRecovery(uint64_t keys, const std::string& image_base) {
  ServerOptions opts = BaseOpts(image_base);
  RecoveryResult res;
  {
    auto s = MustStart(opts, nullptr);
    auto c = MustConnect(*s);
    Load(*c, 0, keys);
    res.log_full_kb = SumField(c->Stats().value_or(""), "log_bytes=") >> 10;
    c->Shutdown();
    s->Wait();
  }
  {
    // Restart #1: no checkpoint — the full history is scanned back in.
    double secs = 0;
    auto s = MustStart(opts, &secs);
    res.restart_full_ms = secs * 1e3;
    auto c = MustConnect(*s);
    res.replayed_full = SumField(c->Stats().value_or(""), "replayed=");

    // Checkpoint, then a fixed tail of writes past it.
    Ckpt(*c);
    Load(*c, keys, keys + kTail);
    res.log_ckpt_kb = SumField(c->Stats().value_or(""), "log_bytes=") >> 10;
    c->Shutdown();
    s->Wait();
  }
  {
    // Restart #2: only the tail segments exist; replay resumes from the
    // durable ckpt_begin.
    double secs = 0;
    auto s = MustStart(opts, &secs);
    res.restart_ckpt_ms = secs * 1e3;
    auto c = MustConnect(*s);
    res.replayed_ckpt = SumField(c->Stats().value_or(""), "replayed=");
    c->Shutdown();
    s->Wait();
  }
  RemoveImages(opts);
  return res;
}

// ---- Claim 2: replica rejoin bounded by the divergence ----------------------

struct RejoinResult {
  double diff_ms = 0;         // detach → catch-up via segment-diff handshake
  uint64_t catchup_kb = 0;    // handshake-reply record bytes for the rejoin
  uint64_t diff_resyncs = 0;
  double fresh_ms = 0;        // empty replica: full REPLSNAP bootstrap
  uint64_t snap_kb = 0;       // snapshot frame bytes served for it
  uint64_t snapshots = 0;
};

void WaitCaughtUp(Client& pc, Client& rc) {
  const uint64_t want = SumField(pc.Stats().value_or(""), "sealed=");
  while (SumField(rc.Stats().value_or(""), "sealed=") < want) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

RejoinResult RunRejoin(uint64_t keys, const std::string& image_base) {
  ServerOptions popts = BaseOpts("");  // primary keeps no image
  auto primary = MustStart(popts, nullptr);
  auto pc = MustConnect(*primary);
  Load(*pc, 0, keys);

  ServerOptions ropts = BaseOpts(image_base);
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary->port());
  {
    auto replica = MustStart(ropts, nullptr);
    auto rc = MustConnect(*replica);
    WaitCaughtUp(*pc, *rc);
    rc->Shutdown();  // saves the follower images
    replica->Wait();
  }

  // The primary checkpoints (truncating the shipped history below its
  // watermark), then diverges by a fixed tail while the replica is away.
  Ckpt(*pc);
  Load(*pc, keys, keys + kTail);

  RejoinResult res;
  const uint64_t cb0 = SumField(pc->Stats().value_or(""), "catchup_bytes=");
  {
    Stopwatch sw;
    auto replica = MustStart(ropts, nullptr);
    auto rc = MustConnect(*replica);
    WaitCaughtUp(*pc, *rc);
    res.diff_ms = sw.ElapsedSec() * 1e3;
    res.catchup_kb =
        (SumField(pc->Stats().value_or(""), "catchup_bytes=") - cb0) >> 10;
    const auto* cl = replica->repl_client();
    res.diff_resyncs = cl != nullptr ? cl->Stats().diff_resyncs : 0;
    res.snapshots = cl != nullptr ? cl->Stats().snapshots_installed : 0;
    rc->Shutdown();
    replica->Wait();
  }
  RemoveImages(ropts);

  // The contrast: a replica with no history is below the primary's
  // truncation watermark and pays the full REPLSNAP bootstrap.
  const uint64_t sb0 = SumField(pc->Stats().value_or(""), "snap_bytes=");
  {
    ServerOptions fopts = BaseOpts("");
    fopts.replica_of = ropts.replica_of;
    Stopwatch sw;
    auto replica = MustStart(fopts, nullptr);
    auto rc = MustConnect(*replica);
    WaitCaughtUp(*pc, *rc);
    res.fresh_ms = sw.ElapsedSec() * 1e3;
    res.snap_kb =
        (SumField(pc->Stats().value_or(""), "snap_bytes=") - sb0) >> 10;
    const auto* cl = replica->repl_client();
    res.snapshots += cl != nullptr ? cl->Stats().snapshots_installed : 0;
    rc->Shutdown();
    replica->Wait();
  }

  pc->Shutdown();
  primary->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — bounded recovery & bootstrap (DESIGN.md §11)\n");
  std::printf("Heap grows ~10x, the divergent tail stays %llu writes: the\n",
              static_cast<unsigned long long>(kTail));
  std::printf("retained log and the rejoin bytes must track the tail.\n");
  std::printf("JNVM_BENCH_SCALE=%g\n", BenchScale());
  std::printf("==============================================================\n");

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("jnvm_abl_bootstrap_" + std::to_string(::getpid())))
          .string();
  const uint64_t n0 = Scaled(2'000);

  std::printf("\nrestart: retained log and replay (no ckpt vs post-CKPT):\n");
  std::printf("%-10s %10s %12s %9s | %10s %12s %9s\n", "keys", "log KB",
              "restart ms", "replayed", "log KB", "restart ms", "replayed");
  for (const uint64_t mul : {1ull, 3ull, 10ull}) {
    const uint64_t keys = n0 * mul;
    const RecoveryResult r = RunRecovery(keys, base);
    std::printf("%-10llu %10llu %12.1f %9llu | %10llu %12.1f %9llu\n",
                static_cast<unsigned long long>(keys),
                static_cast<unsigned long long>(r.log_full_kb),
                r.restart_full_ms,
                static_cast<unsigned long long>(r.replayed_full),
                static_cast<unsigned long long>(r.log_ckpt_kb),
                r.restart_ckpt_ms,
                static_cast<unsigned long long>(r.replayed_ckpt));
  }

  std::printf("\nreplica rejoin after a %llu-write divergence:\n",
              static_cast<unsigned long long>(kTail));
  std::printf("%-10s %10s %12s %6s | %14s %10s %6s\n", "keys", "diff ms",
              "catchup KB", "diffs", "fresh-boot ms", "snap KB", "snaps");
  for (const uint64_t mul : {1ull, 3ull, 10ull}) {
    const uint64_t keys = n0 * mul;
    const RejoinResult r = RunRejoin(keys, base);
    std::printf("%-10llu %10.1f %12llu %6llu | %14.1f %10llu %6llu\n",
                static_cast<unsigned long long>(keys), r.diff_ms,
                static_cast<unsigned long long>(r.catchup_kb),
                static_cast<unsigned long long>(r.diff_resyncs), r.fresh_ms,
                static_cast<unsigned long long>(r.snap_kb),
                static_cast<unsigned long long>(r.snapshots));
  }

  std::printf(
      "\n(2 shards on loopback, 64 B values, fixed 256 MiB devices — restart\n"
      "wall time is dominated by the constant image load; the bounded inputs\n"
      "are the retained-log and replayed columns. `catchup KB` counts the\n"
      "handshake-reply records the primary served the rejoining replica;\n"
      "`snap KB` the REPLSNAP frames for a fresh bootstrap. The stale\n"
      "replica's segment digests verify against the primary's retained\n"
      "tail, so it ships ~the divergence; the fresh replica is below the\n"
      "truncation watermark and pays for the whole store.)\n");
  return 0;
}
