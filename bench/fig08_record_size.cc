// Figure 8 — "The price to access NVMM from the file system": YCSB-A
// completion time vs record size (1–10 KB) for Volatile, NullFS, TmpFS, FS.
//
// Paper result: the three file-system backends perform alike at 2.11–6.26×
// the Volatile baseline; NullFS (which discards data) is barely faster than
// FS — the cost is marshalling, not the file system.
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 8 — YCSB-A completion time (s) vs record size",
              "NullFS/TmpFS/FS all 2.11-6.26x slower than Volatile; NullFS "
              "barely faster than FS => marshalling dominates");

  const uint64_t ops = Scaled(10'000);
  const BackendKind kinds[] = {BackendKind::kVolatile, BackendKind::kNullfs,
                               BackendKind::kTmpfs, BackendKind::kFs};

  std::printf("\n%-12s%12s%12s%12s%12s%14s\n", "record", "Volatile", "NullFS",
              "TmpFS", "FS", "FS/Volatile");
  for (uint32_t kb = 1; kb <= 10; ++kb) {
    BenchConfig cfg;
    cfg.records = Scaled(2'000);
    cfg.fields = 10;
    cfg.field_len = kb * 100;  // 10 fields of kb*100 B = kb KB records
    double secs[4] = {};
    int i = 0;
    for (const BackendKind k : kinds) {
      auto b = MakeBundle(k, cfg);
      const auto spec = SpecFor(cfg, ycsb::WorkloadSpec::A());
      ycsb::LoadPhase(b->kv.get(), spec);
      const auto r = ycsb::RunPhase(b->kv.get(), spec, ops, 1, 42);
      secs[i++] = r.seconds;
    }
    std::printf("%8uKB  %10.3fs %10.3fs %10.3fs %10.3fs %12.2fx\n", kb, secs[0],
                secs[1], secs[2], secs[3], secs[3] / secs[0]);
  }
  std::printf("\n(records=%llu, ops=%llu per cell; NullFS/TmpFS/FS should track "
              "each other)\n",
              static_cast<unsigned long long>(Scaled(2'000)),
              static_cast<unsigned long long>(ops));
  return 0;
}
