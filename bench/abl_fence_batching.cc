// Ablation — fence batching with the validation mechanism (§3.2.3,
// Figure 5).
//
// "Reducing the number of pfences in the application is paramount for
// performance." The valid bit decouples validation from publication, so N
// objects can be made durable under a single pfence. This ablation sweeps
// the batch size and compares against the naive fence-per-object protocol.
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

class Item final : public core::PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        RegisterClass(core::MakeClassInfo<Item>("abl.Item"));
    return info;
  }
  explicit Item(core::Resurrect) {}
  Item(core::JnvmRuntime& rt, uint64_t v) {
    AllocatePersistent(rt, Class(), 64, /*zero=*/false);
    WriteField<uint64_t>(0, v);
    Pwb();
  }
};

}  // namespace

int main() {
  PrintHeader("Ablation — batched validation under one fence (Figure 5)",
              "the low-level interface amortizes one pfence over a whole "
              "allocation batch; the naive protocol fences per object");

  const uint64_t total = Scaled(40'000);
  std::printf("\n%-12s %14s %14s %12s\n", "batch size", "objs/s", "pfences",
              "us/object");
  for (const uint64_t batch : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    nvm::PmemDevice dev(OptaneLike(total * 256 * 2 + (64ull << 20)));
    auto rt = core::JnvmRuntime::Format(&dev);
    dev.ResetStats();
    Stopwatch sw;
    std::vector<std::unique_ptr<Item>> pending;
    pending.reserve(batch);
    for (uint64_t i = 0; i < total; ++i) {
      pending.push_back(std::make_unique<Item>(*rt, i));
      if (pending.size() == batch) {
        rt->Pfence();  // the unique fence of Figure 5
        for (auto& item : pending) {
          item->Validate();
        }
        pending.clear();
      }
    }
    rt->Psync();
    const double secs = sw.ElapsedSec();
    const auto stats = dev.stats();
    std::printf("%-12llu %12.1fK %14llu %12.3f\n",
                static_cast<unsigned long long>(batch),
                static_cast<double>(total) / secs / 1e3,
                static_cast<unsigned long long>(stats.pfences + stats.psyncs),
                secs * 1e6 / static_cast<double>(total));
  }
  std::printf("\n(%llu objects total; crash before a batch fence reclaims the\n"
              "whole in-flight batch — all-or-nothing by §3.2.3)\n",
              static_cast<unsigned long long>(total));
  return 0;
}
