// Figure 1 — YCSB-F on a managed runtime (Infinispan + FS backend) with
// different volatile cache ratios: completion time with GC/compute split
// (left panel) and tail latency (right panel).
//
// Paper result: a bigger cache improves compute time but at 100% cache 69%
// of the time goes to GC, roughly doubling completion; above the 0.9999
// percentile the 1% cache is ~50x faster than the 100% cache.
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 1 — YCSB-F with different cache ratios (managed heap + FS)",
              "100% cache: ~2x completion, 69% GC share; tail (p9999+) ~50x "
              "worse than the 1% cache");

  BenchConfig cfg;
  cfg.records = Scaled(50'000);
  // Collection threshold scaled so the 100%-cache live set spans several
  // cycles, like G1 on the paper's 100 GB heap.
  cfg.gc_trigger_bytes = 1ull << 20;
  const uint64_t ops = Scaled(60'000);

  std::printf("\n%-8s %12s %10s %10s %8s %14s %12s\n", "cache", "completion",
              "compute", "gc", "gc%", "p9999", "max");
  for (const double ratio : {0.01, 0.10, 1.00}) {
    cfg.cache_ratio = ratio;
    auto b = MakeBundle(BackendKind::kFs, cfg);
    const auto spec = SpecFor(cfg, ycsb::WorkloadSpec::F());
    ycsb::LoadPhase(b->kv.get(), spec);
    const auto r =
        ycsb::RunPhase(b->kv.get(), spec, ops, 1, 42, b->gc_heap());
    const double gc_s = static_cast<double>(r.gc_ns) / 1e9;
    std::printf("%6.0f%% %11.2fs %9.2fs %9.2fs %7.1f%% %12.1fus %10.1fus\n",
                ratio * 100, r.seconds, r.seconds - gc_s, gc_s,
                100.0 * gc_s / r.seconds,
                static_cast<double>(r.all.ValueAtQuantile(0.9999)) / 1e3,
                static_cast<double>(r.all.max_ns()) / 1e3);
  }
  std::printf("\n(records=%llu x 10 x 100B, ops=%llu, YCSB-F = 50%% read / 50%% "
              "rmw; GC runs every %s of allocation)\n",
              static_cast<unsigned long long>(cfg.records),
              static_cast<unsigned long long>(ops),
              HumanBytes(cfg.gc_trigger_bytes).c_str());
  return 0;
}
