// Microbenchmarks (google-benchmark) for the primitive operations every
// figure is built from: device access, persistence primitives, proxy field
// access, resurrection, map operations, failure-atomic commits and
// marshalling. Complements the figure harnesses with per-op costs.
//
//   $ ./micro_ops [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/pdt/pmap.h"
#include "src/store/record.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

// Shared fixtures (built once; google-benchmark calls the loop many times).
struct World {
  World() {
    dev = std::make_unique<nvm::PmemDevice>(OptaneLike(256ull << 20));
    rt = core::JnvmRuntime::Format(dev.get());
    map = std::make_shared<pdt::PStringHashMap>(*rt, 1 << 15);
    map->Pwb();
    map->Validate();
    rt->root().Put("m", map.get());
    for (int i = 0; i < 10'000; ++i) {
      pdt::PString v(*rt, "value-" + std::to_string(i));
      map->Put("key" + std::to_string(i), &v);
    }
  }
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
  core::Handle<pdt::PStringHashMap> map;
};

World& TheWorld() {
  static World* w = new World();
  return *w;
}

class Obj final : public core::PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        RegisterClass(core::MakeClassInfo<Obj>("micro.Obj"));
    return info;
  }
  explicit Obj(core::Resurrect) {}
  explicit Obj(core::JnvmRuntime& rt) { AllocatePersistent(rt, Class(), 64); }
  int64_t Get() const { return ReadField<int64_t>(0); }
  void Set(int64_t v) { WriteField<int64_t>(0, v); }
};

// ---- Device primitives ---------------------------------------------------------

void BM_DeviceRead64(benchmark::State& state) {
  auto& w = TheWorld();
  uint64_t off = w.rt->heap().PayloadOf(w.rt->heap().first_block());
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.dev->Read<uint64_t>(off));
  }
}
BENCHMARK(BM_DeviceRead64);

void BM_DeviceWrite64Pwb(benchmark::State& state) {
  auto& w = TheWorld();
  uint64_t off = w.rt->heap().PayloadOf(w.rt->heap().first_block());
  uint64_t v = 0;
  for (auto _ : state) {
    w.dev->Write<uint64_t>(off, ++v);
    w.dev->Pwb(off);
  }
}
BENCHMARK(BM_DeviceWrite64Pwb);

void BM_Pfence(benchmark::State& state) {
  auto& w = TheWorld();
  for (auto _ : state) {
    w.dev->Pfence();
  }
}
BENCHMARK(BM_Pfence);

// ---- Proxy field access (Figure 4 accessors) -------------------------------------

void BM_ProxyFieldRead(benchmark::State& state) {
  auto& w = TheWorld();
  Obj o(*w.rt);
  o.Set(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(o.Get());
  }
}
BENCHMARK(BM_ProxyFieldRead);

void BM_ProxyFieldWrite(benchmark::State& state) {
  auto& w = TheWorld();
  Obj o(*w.rt);
  int64_t v = 0;
  for (auto _ : state) {
    o.Set(++v);
  }
}
BENCHMARK(BM_ProxyFieldWrite);

void BM_ProxyFieldWriteInFaBlock(benchmark::State& state) {
  auto& w = TheWorld();
  Obj o(*w.rt);
  o.Pwb();
  o.Validate();
  w.rt->Pfence();
  int64_t v = 0;
  for (auto _ : state) {
    w.rt->FaStart();
    o.Set(++v);  // in-flight copy + redo-log entry
    w.rt->FaEnd();
  }
}
BENCHMARK(BM_ProxyFieldWriteInFaBlock);

// ---- Resurrection (§3.1) ----------------------------------------------------------

void BM_Resurrection(benchmark::State& state) {
  auto& w = TheWorld();
  Obj o(*w.rt);
  o.Set(7);
  const nvm::Offset addr = o.addr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.rt->ResurrectRefAs<Obj>(addr));
  }
}
BENCHMARK(BM_Resurrection);

// ---- Map operations (base variant) --------------------------------------------------

void BM_MapGet(benchmark::State& state) {
  auto& w = TheWorld();
  Xorshift rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.map->Get("key" + std::to_string(rng.NextBelow(10'000))));
  }
}
BENCHMARK(BM_MapGet);

void BM_MapPutReplace(benchmark::State& state) {
  auto& w = TheWorld();
  Xorshift rng(2);
  for (auto _ : state) {
    pdt::PString v(*w.rt, "replacement-value");
    w.map->Put("key" + std::to_string(rng.NextBelow(10'000)), &v);
  }
}
BENCHMARK(BM_MapPutReplace);

void BM_MapInsertRemove(benchmark::State& state) {
  auto& w = TheWorld();
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "tmp" + std::to_string(i++);
    pdt::PString v(*w.rt, "temporary-value");
    w.map->Put(key, &v);
    w.map->Remove(key);
  }
}
BENCHMARK(BM_MapInsertRemove);

// ---- Failure-atomic block overhead ----------------------------------------------------

void BM_EmptyFaBlock(benchmark::State& state) {
  auto& w = TheWorld();
  for (auto _ : state) {
    w.rt->FaStart();
    w.rt->FaEnd();
  }
}
BENCHMARK(BM_EmptyFaBlock);

// ---- Marshalling (the FS-backend cost, Figure 8) ----------------------------------------

void BM_MarshalRecord(benchmark::State& state) {
  const auto r = store::SyntheticRecord(1, 0, 10, 100);
  std::string image;
  for (auto _ : state) {
    store::MarshalRecord(r, &image);
    benchmark::DoNotOptimize(image);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_MarshalRecord);

void BM_UnmarshalRecord(benchmark::State& state) {
  const auto r = store::SyntheticRecord(1, 0, 10, 100);
  std::string image;
  store::MarshalRecord(r, &image);
  store::Record out;
  for (auto _ : state) {
    store::UnmarshalRecord(image, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_UnmarshalRecord);

}  // namespace

BENCHMARK_MAIN();
