// Ablation — replication fan-out cost vs subscriber count (DESIGN.md §7/§8).
//
// Before this path, the event loop copied every sealed stream frame into
// each REPLSYNC subscriber's output buffer: O(subscribers) memcpy of the
// whole batch per seal. Now a sealed batch is serialized exactly once into
// a refcounted immutable frame and enqueued by reference on every
// subscriber, so primary-side fan-out is O(subscribers) pointers. This
// ablation drives one primary with 1/2/4/8 raw REPLSYNC subscribers (reader
// threads draining the stream, no full replicas — isolates the primary-side
// cost) under a pipelined write load and reports: write throughput, the
// number of frame serializations (stream_frames: one per sealed batch
// regardless of subscriber count), the bytes serialized (stream_frame_bytes:
// also independent of N), the per-subscriber refs (frame_refs), and the
// serialized bytes amortized per subscriber — the memcpy bill, which the
// shared frames drive toward zero as N grows where the old path paid the
// full frame size per subscriber.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

// Sums every occurrence of `field` (e.g. "subs=") in a STATS body.
uint64_t SumField(const std::string& stats, const char* field) {
  uint64_t sum = 0;
  size_t pos = 0;
  const size_t n = std::strlen(field);
  while ((pos = stats.find(field, pos)) != std::string::npos) {
    pos += n;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

struct RunResult {
  double write_secs = 0;
  uint64_t stream_frames = 0;       // serializations (one per sealed batch)
  uint64_t stream_frame_bytes = 0;  // bytes serialized, once
  uint64_t frame_refs = 0;          // zero-copy enqueues across subscribers
  uint64_t frame_bytes = 0;         // logical bytes those refs carried
};

RunResult RunOnce(uint32_t subs, uint64_t total, uint64_t pipeline) {
  ServerOptions opts;
  opts.nshards = 1;  // one worker: subscribers == stream connections
  opts.shard.device_bytes = 128ull << 20;
  opts.shard.map_capacity = 1 << 14;
  opts.shard.batch = 16;
  std::string err;
  auto server = Server::Start(opts, &err);
  if (server == nullptr) {
    std::fprintf(stderr, "server: %s\n", err.c_str());
    std::exit(1);
  }

  // Raw subscribers: REPLSYNC, then let the stream land in an oversized
  // kernel receive buffer — no reader threads at all, so the subscribers
  // cost the primary nothing but its own fan-out path (a real replica
  // parses and applies on its own machine; here every spare cycle belongs
  // to the primary we are measuring).
  std::vector<int> sfds;
  for (uint32_t s = 0; s < subs; ++s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int rcvbuf = 64 << 20;
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUFFORCE, &rcvbuf,
                     sizeof(rcvbuf)) != 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::perror("subscriber connect");
      std::exit(1);
    }
    // Log sequences start at 1: from=1 on a fresh primary streams from the
    // first sealed record.
    const std::string cmd =
        "*3\r\n$8\r\nREPLSYNC\r\n$1\r\n0\r\n$1\r\n1\r\n";
    if (::send(fd, cmd.data(), cmd.size(), 0) !=
        static_cast<ssize_t>(cmd.size())) {
      std::perror("subscriber send");
      std::exit(1);
    }
    sfds.push_back(fd);
  }

  auto pc = Client::Connect("127.0.0.1", server->port(), &err);
  if (pc == nullptr) {
    std::fprintf(stderr, "connect: %s\n", err.c_str());
    std::exit(1);
  }
  while (SumField(pc->Stats().value_or(""), "subs=") < subs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  RunResult res;
  Stopwatch sw;
  std::vector<RespReply> replies;
  for (uint64_t i = 0; i < total; i += pipeline) {
    for (uint64_t j = i; j < i + pipeline && j < total; ++j) {
      pc->PipeSet("key:" + std::to_string(j), "value:" + std::to_string(j));
    }
    replies.clear();
    if (!pc->Sync(&replies)) {
      std::fprintf(stderr, "pipeline: %s\n", pc->last_error().c_str());
      std::exit(1);
    }
  }
  res.write_secs = sw.ElapsedSec();

  const std::string stats = pc->Stats().value_or("");
  res.stream_frames = SumField(stats, "stream_frames=");
  res.stream_frame_bytes = SumField(stats, "stream_frame_bytes=");
  res.frame_refs = SumField(stats, "frame_refs=");
  res.frame_bytes = SumField(stats, " frame_bytes=");  // server output line

  for (const int fd : sfds) {
    ::close(fd);
  }
  pc->Shutdown();
  server->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — replication fan-out cost vs subscriber count (§7)\n");
  std::printf("Each sealed batch is serialized once into a shared refcounted\n");
  std::printf("frame; subscribers enqueue references. copied/sub is the\n");
  std::printf("serialization bill amortized per subscriber (the old path\n");
  std::printf("paid shipped/sub in memcpy). JNVM_BENCH_SCALE=%g\n",
              BenchScale());
  std::printf("==============================================================\n");

  const uint64_t total = Scaled(20'000);
  const uint64_t pipeline = 64;
  std::printf("\n%-6s %10s %10s %12s %10s %12s %12s\n", "subs", "writes/s",
              "frames", "ser bytes", "refs", "copied/sub", "shipped/sub");
  for (const uint32_t subs : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunOnce(subs, total, pipeline);
    std::printf("%-6u %9.1fK %10llu %12llu %10llu %12llu %12llu\n", subs,
                static_cast<double>(total) / r.write_secs / 1e3,
                static_cast<unsigned long long>(r.stream_frames),
                static_cast<unsigned long long>(r.stream_frame_bytes),
                static_cast<unsigned long long>(r.frame_refs),
                static_cast<unsigned long long>(r.stream_frame_bytes / subs),
                static_cast<unsigned long long>(r.frame_bytes / subs));
  }
  std::printf(
      "\n(%llu pipelined SETs, 1 shard, batch=16, raw REPLSYNC reader\n"
      "threads on loopback. 'ser bytes' is written once no matter how many\n"
      "subscribers; 'shipped/sub' is what each subscriber receives on the\n"
      "wire — under the old per-subscriber copy it was also the memcpy\n"
      "bill, now copied/sub = ser/subs -> 0 as subscribers grow.)\n",
      static_cast<unsigned long long>(total));
  return 0;
}
