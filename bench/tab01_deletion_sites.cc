// Table 1 — "NVMM-ready data stores rarely delete persistent objects".
//
// The paper counts explicit deletion sites in seven open-source stores to
// argue that a runtime GC for persistent objects buys little (§2.2.2). The
// original numbers are reproduced as data (the checkouts are not available
// offline); we additionally count the deletion sites in *this* repository's
// store backends, which lands in the same one-digit range.
#include <cstdio>

int main() {
  std::printf("Table 1 — deletion sites in NVMM-ready data stores (paper data)\n");
  std::printf("%-28s %10s %8s\n", "data store", "SLOC", "#sites");
  struct Row {
    const char* store;
    const char* sloc;
    int sites;
  };
  const Row rows[] = {
      {"infinispan (the paper)", "603,800", 4}, {"cassandra-pmem", "334,300", 1},
      {"pmem-rocksdb", "314,900", 4},           {"pmem-redis", "55,900", 1},
      {"pmemkv", "25,600", 2},                  {"go-redis-pmem", "8,400", 2},
      {"pmse (MongoDB)", "4,800", 3},
  };
  for (const Row& r : rows) {
    std::printf("%-28s %10s %8d\n", r.store, r.sloc, r.sites);
  }

  std::printf("\nThis repository's store backends (counted from the sources):\n");
  // The call sites that delete persistent objects in src/store:
  //   JpdtBackend::Delete           -> PMap::Remove(free_value)
  //   PMap::Put                     -> SetValueAndFreeOld (replace)
  //   JpfaHashMap::Remove           -> FreeRef(key/value) + Free(entry)
  //   JpfaHashMap::Put              -> FreeRef(old value)  (replace)
  std::printf("%-28s %10s %8d\n", "jnvm-store (this repo)", "~3,000", 4);
  std::printf("\nConclusion (§2.2.2): a handful of deletion sites even in large\n"
              "code bases — garbage collecting persistent objects at runtime\n"
              "has limited interest for a data store.\n");
  return 0;
}
