// Ablation — replica read scaling under the session contract (DESIGN.md §8).
//
// Writes go to one primary; session-consistent reads (MINSEQ tokens taken
// from the primary's LASTSEQ) fan out across 1/2/4 live replicas. The
// measured read latency INCLUDES any replica-side staleness wait — a read
// whose token is ahead of the shard's applied watermark parks until the
// apply stream catches up — so the table reports both the aggregate reads/s
// scaling and the parked-read tail (p99). A -STALE reply counts as a
// correctness failure of the run: the contract is fresh-or-explicit-error,
// and with live replicas the error path must never fire.
//
// The 4-replica row is measured twice: a star (all four pull from the
// primary) and a tree (two mid-tier replicas each feeding a leaf) — the
// chained topology serves the same session reads from the leaves while the
// primary carries half the subscriber fan-out.
//
// NOTE: aggregate scaling needs hardware parallelism; on a single-core host
// every server time-shares one CPU and the ratio flattens toward 1x.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/shard.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

constexpr uint32_t kShards = 2;
constexpr uint32_t kReaders = 4;
constexpr uint32_t kPipeline = 64;

uint64_t SumSealed(const std::string& stats) {
  uint64_t sum = 0;
  size_t pos = 0;
  while ((pos = stats.find("sealed=", pos)) != std::string::npos) {
    pos += 7;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

ServerOptions BaseOpts() {
  ServerOptions o;
  o.nshards = kShards;
  o.shard.device_bytes = 128ull << 20;
  o.shard.map_capacity = 1 << 14;
  o.shard.read_stale_timeout_ms = 10'000;  // park, never -STALE, while live
  return o;
}

std::string Key(uint64_t i) { return "key:" + std::to_string(i); }

struct ReaderResult {
  uint64_t reads = 0;
  uint64_t misses = 0;
  uint64_t stales = 0;
  Histogram lat;
};

// One reader thread: session reads against a single replica endpoint,
// raising MINSEQ whenever the writer published a newer token.
void Reader(uint16_t port, uint64_t keys, uint64_t rounds,
            const std::atomic<uint64_t>* tokens, uint64_t seed,
            ReaderResult* res) {
  std::string err;
  auto c = Client::Connect("127.0.0.1", port, &err);
  if (c == nullptr) {
    std::fprintf(stderr, "reader connect: %s\n", err.c_str());
    std::exit(1);
  }
  Xorshift rng(seed);
  std::vector<uint64_t> sent(kShards, 0);
  std::vector<RespReply> replies;
  for (uint64_t r = 0; r < rounds; ++r) {
    uint32_t preludes = 0;
    for (uint32_t s = 0; s < kShards; ++s) {
      const uint64_t tok = tokens[s].load(std::memory_order_acquire);
      if (tok > sent[s]) {
        c->PipeCommand({"MINSEQ", std::to_string(s), std::to_string(tok)});
        sent[s] = tok;
        ++preludes;
      }
    }
    for (uint32_t i = 0; i < kPipeline; ++i) {
      c->PipeGet(Key(rng.NextBelow(keys)));
    }
    const uint64_t t0 = NowNs();
    replies.clear();
    if (!c->Sync(&replies)) {
      std::fprintf(stderr, "reader sync: %s\n", c->last_error().c_str());
      std::exit(1);
    }
    const uint64_t per_op = (NowNs() - t0) / kPipeline;
    for (size_t i = 0; i < replies.size(); ++i) {
      if (i < preludes) {
        continue;  // MINSEQ +OK
      }
      const RespReply& rep = replies[i];
      if (rep.type == RespReply::Type::kError) {
        if (rep.str.rfind("STALE", 0) == 0) {
          res->stales++;
          continue;
        }
        std::fprintf(stderr, "reader reply: %s\n", rep.str.c_str());
        std::exit(1);
      }
      res->lat.Record(per_op);
      res->reads++;
      if (rep.type == RespReply::Type::kNil) {
        res->misses++;
      }
    }
  }
}

struct RunResult {
  double reads_per_sec = 0;
  uint64_t stales = 0;
  uint64_t misses = 0;
  std::string lat_summary;
};

// Starts a primary plus `nreplicas` followers. `tree` arranges four
// replicas as primary→{A,B}, A→C, B→D; otherwise all pull from the primary.
RunResult RunOnce(uint32_t nreplicas, bool tree, uint64_t keys,
                  uint64_t rounds) {
  std::string err;
  auto primary = Server::Start(BaseOpts(), &err);
  if (primary == nullptr) {
    std::fprintf(stderr, "primary: %s\n", err.c_str());
    std::exit(1);
  }
  std::vector<std::unique_ptr<Server>> replicas;
  for (uint32_t i = 0; i < nreplicas; ++i) {
    ServerOptions o = BaseOpts();
    uint16_t upstream = primary->port();
    if (tree && i >= 2) {
      upstream = replicas[i - 2]->port();  // C follows A, D follows B
    }
    o.replica_of = "127.0.0.1:" + std::to_string(upstream);
    auto r = Server::Start(o, &err);
    if (r == nullptr) {
      std::fprintf(stderr, "replica %u: %s\n", i, err.c_str());
      std::exit(1);
    }
    replicas.push_back(std::move(r));
  }

  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  if (pc == nullptr) {
    std::fprintf(stderr, "connect: %s\n", err.c_str());
    std::exit(1);
  }
  std::vector<RespReply> replies;
  for (uint64_t i = 0; i < keys;) {
    const uint64_t stop = std::min<uint64_t>(i + 128, keys);
    for (; i < stop; ++i) {
      pc->PipeSet(Key(i), "value:" + std::to_string(i));
    }
    replies.clear();
    if (!pc->Sync(&replies)) {
      std::fprintf(stderr, "preload: %s\n", pc->last_error().c_str());
      std::exit(1);
    }
  }
  // Converge every replica onto the preload before the measured phase.
  const uint64_t preload_sealed = SumSealed(pc->Stats().value_or(""));
  for (auto& r : replicas) {
    auto rc = Client::Connect("127.0.0.1", r->port(), &err);
    while (rc != nullptr &&
           SumSealed(rc->Stats().value_or("")) < preload_sealed) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // Writer: a background trickle of SET+LASTSEQ pairs publishing fresh
  // session tokens, so the measured reads keep re-raising MINSEQ and a
  // slice of them genuinely park on the apply stream.
  std::atomic<uint64_t> tokens[kShards] = {};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t j = 0;
    std::vector<RespReply> wr;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<uint32_t> shards;
      for (int b = 0; b < 8; ++b, ++j) {
        const std::string k = "w:" + std::to_string(j % 512);
        pc->PipeSet(k, "wv:" + std::to_string(j));
        pc->PipeCommand({"LASTSEQ", std::to_string(ShardFor(k, kShards))});
        shards.push_back(ShardFor(k, kShards));
      }
      wr.clear();
      if (!pc->Sync(&wr)) {
        return;
      }
      for (size_t i = 1; i < wr.size(); i += 2) {
        if (wr[i].type == RespReply::Type::kInteger) {
          const uint32_t s = shards[i / 2];
          uint64_t cur = tokens[s].load(std::memory_order_relaxed);
          const uint64_t seq = static_cast<uint64_t>(wr[i].integer);
          while (seq > cur &&
                 !tokens[s].compare_exchange_weak(cur, seq)) {
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<ReaderResult> results(kReaders);
  Stopwatch sw;
  {
    std::vector<std::thread> readers;
    for (uint32_t t = 0; t < kReaders; ++t) {
      const uint16_t port = replicas[t % nreplicas]->port();
      readers.emplace_back(Reader, port, keys, rounds, tokens,
                           0x5ca1e + t, &results[t]);
    }
    for (auto& th : readers) {
      th.join();
    }
  }
  const double secs = sw.ElapsedSec();
  stop.store(true, std::memory_order_release);
  writer.join();

  RunResult res;
  Histogram lat;
  uint64_t reads = 0;
  for (const ReaderResult& r : results) {
    reads += r.reads;
    res.misses += r.misses;
    res.stales += r.stales;
    lat.Merge(r.lat);
  }
  res.reads_per_sec = secs > 0 ? static_cast<double>(reads) / secs : 0;
  res.lat_summary = lat.Summary();

  for (auto it = replicas.rbegin(); it != replicas.rend(); ++it) {
    auto rc = Client::Connect("127.0.0.1", (*it)->port(), &err);
    if (rc != nullptr) {
      rc->Shutdown();
    }
    (*it)->Wait();
  }
  pc->Shutdown();
  primary->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — session-read scaling across replicas (§8)\n");
  std::printf("%u reader threads, pipeline %u, %u shards; read latency\n",
              kReaders, kPipeline, kShards);
  std::printf("includes the staleness wait of parked session reads.\n");
  std::printf("JNVM_BENCH_SCALE=%g\n", BenchScale());
  std::printf("==============================================================\n");

  const uint64_t keys = Scaled(5'000);
  const uint64_t rounds = Scaled(150);

  struct Row {
    const char* label;
    uint32_t nreplicas;
    bool tree;
  };
  const Row rows[] = {
      {"1 (star)", 1, false},
      {"2 (star)", 2, false},
      {"4 (star)", 4, false},
      {"4 (tree)", 4, true},
  };
  double base = 0;
  std::printf("\n%-10s %12s %8s %8s %8s  %s\n", "replicas", "reads/s",
              "scale", "stale", "miss", "latency (incl. park wait)");
  for (const Row& row : rows) {
    const RunResult r = RunOnce(row.nreplicas, row.tree, keys, rounds);
    if (base == 0) {
      base = r.reads_per_sec;
    }
    std::printf("%-10s %11.1fK %7.2fx %8llu %8llu  %s\n", row.label,
                r.reads_per_sec / 1e3,
                base > 0 ? r.reads_per_sec / base : 0.0,
                static_cast<unsigned long long>(r.stales),
                static_cast<unsigned long long>(r.misses),
                r.lat_summary.c_str());
  }
  std::printf(
      "\n(Readers round-robin across replica endpoints; a background writer\n"
      "keeps publishing fresh LASTSEQ tokens so session reads continuously\n"
      "re-raise their MINSEQ floor. stale and miss must be 0: with live\n"
      "replicas every read parks until covered, never degrades.)\n");
  return 0;
}
