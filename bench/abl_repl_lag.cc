// Ablation — replica lag vs the group-commit batch size (DESIGN.md §8).
//
// The replication unit is the group-commit batch: one durable log record,
// one Psync, one shipped frame per batch. Sweeping `--batch` therefore
// trades primary throughput (fence amortization, §3.2.3) against the
// granularity of the stream a replica consumes. This ablation runs a real
// primary+replica pair over loopback, pipelines writes into the primary,
// and measures (a) primary throughput, (b) the time for the replica to
// drain the backlog after the last ack (replica lag), and (c) how many
// stream records carried the same logical write volume.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bench_env.h"
#include "src/common/clock.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace jnvm;
using namespace jnvm::server;

namespace {

// Sums the `sealed=` counters out of a STATS body — the same signal the CI
// replication job greps for.
uint64_t SumSealed(const std::string& stats) {
  uint64_t sum = 0;
  size_t pos = 0;
  while ((pos = stats.find("sealed=", pos)) != std::string::npos) {
    pos += 7;
    sum += std::strtoull(stats.c_str() + pos, nullptr, 10);
  }
  return sum;
}

struct RunResult {
  double write_secs = 0;
  double lag_ms = 0;
  uint64_t records = 0;   // stream records received by the replica
  uint64_t sealed = 0;    // log records sealed on the primary
};

RunResult RunOnce(uint32_t batch, uint64_t total, uint64_t pipeline,
                  uint32_t apply_batch = 0) {
  ServerOptions popts;
  popts.nshards = 2;
  popts.shard.device_bytes = 128ull << 20;
  popts.shard.map_capacity = 1 << 14;
  popts.shard.batch = batch;
  std::string err;
  auto primary = Server::Start(popts, &err);
  if (primary == nullptr) {
    std::fprintf(stderr, "primary: %s\n", err.c_str());
    std::exit(1);
  }
  ServerOptions ropts = popts;
  ropts.shard.apply_batch = apply_batch;
  ropts.replica_of = "127.0.0.1:" + std::to_string(primary->port());
  auto replica = Server::Start(ropts, &err);
  if (replica == nullptr) {
    std::fprintf(stderr, "replica: %s\n", err.c_str());
    std::exit(1);
  }

  auto pc = Client::Connect("127.0.0.1", primary->port(), &err);
  auto rc = Client::Connect("127.0.0.1", replica->port(), &err);
  if (pc == nullptr || rc == nullptr) {
    std::fprintf(stderr, "connect: %s\n", err.c_str());
    std::exit(1);
  }

  RunResult res;
  Stopwatch sw;
  std::vector<RespReply> replies;
  for (uint64_t i = 0; i < total; i += pipeline) {
    for (uint64_t j = i; j < i + pipeline && j < total; ++j) {
      pc->PipeSet("key:" + std::to_string(j), "value:" + std::to_string(j));
    }
    replies.clear();
    if (!pc->Sync(&replies)) {
      std::fprintf(stderr, "pipeline: %s\n", pc->last_error().c_str());
      std::exit(1);
    }
  }
  res.write_secs = sw.ElapsedSec();

  // Replica lag: time from the last acknowledged write until the replica's
  // sealed counters match the primary's.
  res.sealed = SumSealed(pc->Stats().value_or(""));
  Stopwatch lag;
  while (SumSealed(rc->Stats().value_or("")) < res.sealed) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  res.lag_ms = lag.ElapsedSec() * 1e3;

  const auto* client = replica->repl_client();
  res.records = client != nullptr ? client->Stats().records_received : 0;

  rc->Shutdown();
  replica->Wait();
  pc->Shutdown();
  primary->Wait();
  return res;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — replica lag vs group-commit batch size (§8)\n");
  std::printf("One log record + one Psync + one shipped frame per batch: the\n");
  std::printf("--batch knob trades primary throughput against stream\n");
  std::printf("granularity. JNVM_BENCH_SCALE=%g\n", BenchScale());
  std::printf("==============================================================\n");

  const uint64_t total = Scaled(20'000);
  const uint64_t pipeline = 64;
  std::printf("\n%-8s %12s %12s %14s %12s\n", "batch", "writes/s", "lag ms",
              "stream recs", "writes/rec");
  for (const uint32_t batch : {1u, 4u, 16u, 64u, 256u}) {
    const RunResult r = RunOnce(batch, total, pipeline);
    std::printf("%-8u %11.1fK %12.2f %14llu %12.1f\n", batch,
                static_cast<double>(total) / r.write_secs / 1e3, r.lag_ms,
                static_cast<unsigned long long>(r.records),
                r.records != 0
                    ? static_cast<double>(total) / static_cast<double>(r.records)
                    : 0.0);
  }

  // Apply-batch ablation (ROADMAP): the replica normally applies with the
  // same group size the primary sealed with. --apply-batch decouples them —
  // a batch=1 primary seals 20k one-write records, but the replica can fold
  // up to N of them into one local group commit.
  std::printf("\napply-batch decoupling (primary --batch=1):\n");
  std::printf("%-12s %12s %12s %14s\n", "apply_batch", "writes/s", "lag ms",
              "stream recs");
  for (const uint32_t ab : {1u, 16u, 64u}) {
    const RunResult r = RunOnce(1, total, pipeline, ab);
    std::printf("%-12u %11.1fK %12.2f %14llu\n", ab,
                static_cast<double>(total) / r.write_secs / 1e3, r.lag_ms,
                static_cast<unsigned long long>(r.records));
  }
  std::printf(
      "\n(%llu pipelined SETs over 2 shards, replica on loopback. Lag is the\n"
      "drain time of the backlog after the final ack — bigger batches seal\n"
      "fewer, fatter records, so the replica applies the same writes in\n"
      "fewer group commits of its own.)\n",
      static_cast<unsigned long long>(total));
  return 0;
}
