// Figure 12 — "Persistent vs. volatile data types": YCSB-A executed
// directly on the maps (no Infinispan/KvStore layer) for the three
// structures of §5.3.4 — hash map, red-black tree, skip list — against
// their volatile counterparts, plus the Blackhole baseline (workload
// injection only).
//
// Paper result: J-PDT is 45–50% slower than the volatile implementation,
// because (i) crash handling needs pfences in the critical path, (ii) NVMM
// is slower than DRAM, (iii) accesses go through proxies. The volatile bars
// include a visible GC share.
#include "bench/bench_util.h"
#include "src/pdt/pmap.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

constexpr uint32_t kValueBytes = 1'000;  // 1 KB values, as in Figure 12

struct Breakdown {
  double read_s = 0;
  double update_s = 0;
  double gc_s = 0;
  double total_s = 0;
};

// One YCSB-A pass over an abstract map interface.
template <typename ReadFn, typename UpdateFn>
Breakdown RunA(uint64_t records, uint64_t ops, ReadFn&& read, UpdateFn&& update,
               gcsim::ManagedHeap* gc) {
  Xorshift op_rng(42);
  ZipfianGenerator zipf(10'000'000'000ull, 0.99, 77);
  const uint64_t gc_before = gc != nullptr ? gc->stats().gc_ns_total : 0;
  Breakdown b;
  Stopwatch total;
  uint64_t read_ns = 0;
  uint64_t update_ns = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t key_index = Mix64(zipf.Next()) % records;
    const std::string key = ycsb::KeyFor(key_index);
    if (op_rng.NextDouble() < 0.5) {
      const uint64_t t0 = NowNs();
      read(key);
      read_ns += NowNs() - t0;
    } else {
      const uint64_t t0 = NowNs();
      update(key, key_index);
      update_ns += NowNs() - t0;
    }
  }
  b.total_s = total.ElapsedSec();
  b.read_s = static_cast<double>(read_ns) / 1e9;
  b.update_s = static_cast<double>(update_ns) / 1e9;
  if (gc != nullptr) {
    b.gc_s = static_cast<double>(gc->stats().gc_ns_total - gc_before) / 1e9;
  }
  return b;
}

void Print(const char* structure, const char* variant, const Breakdown& b) {
  const double exec = b.total_s - b.read_s - b.update_s;
  std::printf("%-12s %-10s read %7.3fs  update %7.3fs  gc %7.3fs  exec %7.3fs"
              "  total %7.3fs\n",
              structure, variant, b.read_s, b.update_s - b.gc_s, b.gc_s,
              exec < 0 ? 0.0 : exec, b.total_s);
}

std::string ValueFor(uint64_t i) {
  std::string v(kValueBytes, '\0');
  Xorshift rng(Mix64(i));
  for (auto& c : v) {
    c = static_cast<char>('a' + rng.NextBelow(26));
  }
  return v;
}

// Iterator value access shims for std maps vs SkipListMap.
template <typename It>
gcsim::ObjRef ValueOf(const It& it) {
  return it->second;
}
template <typename It>
void SetValueOf(It& it, gcsim::ObjRef v) {
  it->second = v;
}
gcsim::ObjRef ValueOf(const pdt::SkipListMap<std::string, gcsim::ObjRef>::iterator& it) {
  return it.value();
}
void SetValueOf(pdt::SkipListMap<std::string, gcsim::ObjRef>::iterator& it,
                gcsim::ObjRef v) {
  it.value() = v;
}

// Volatile counterpart: a std-style map of managed-heap records (GC traced).
template <typename MapT>
Breakdown RunVolatile(uint64_t records, uint64_t ops) {
  gcsim::ManagedHeap gc(gcsim::GcOptions{.gc_trigger_bytes = 4ull << 20});
  MapT map;
  for (uint64_t i = 0; i < records; ++i) {
    auto* s = new std::string(ValueFor(i));
    const gcsim::ObjRef node = gc.Alloc(0, kValueBytes + 48, s, [](void* p) {
      delete static_cast<std::string*>(p);
    });
    gc.AddRoot(node);
    map[ycsb::KeyFor(i)] = node;
  }
  return RunA(
      records, ops,
      [&](const std::string& key) {
        auto it = map.find(key);
        if (it != map.end()) {
          volatile size_t sink =
              static_cast<std::string*>(gc.External(ValueOf(it)))->size();
          (void)sink;
        }
      },
      [&](const std::string& key, uint64_t i) {
        auto* s = new std::string(ValueFor(i + 1));
        const gcsim::ObjRef node = gc.Alloc(0, kValueBytes + 48, s, [](void* p) {
          delete static_cast<std::string*>(p);
        });
        gc.AddRoot(node);
        auto it = map.find(key);
        if (it != map.end()) {
          gc.RemoveRoot(ValueOf(it));  // old value floats until the GC runs
          SetValueOf(it, node);
        } else {
          map[key] = node;
        }
      },
      &gc);
}

// Persistent map (J-PDT) run.
template <typename MapT>
Breakdown RunPersistent(uint64_t records, uint64_t ops) {
  const uint64_t bytes = records * (kValueBytes + 512) * 4 + (64ull << 20);
  nvm::PmemDevice dev(OptaneLike(bytes));
  auto rt = core::JnvmRuntime::Format(&dev);
  MapT map(*rt, 2 * records);
  for (uint64_t i = 0; i < records; ++i) {
    pdt::PString v(*rt, ValueFor(i));
    map.Put(ycsb::KeyFor(i), &v);
  }
  return RunA(
      records, ops,
      [&](const std::string& key) {
        const auto v = map.template GetAs<pdt::PString>(key);
        if (v != nullptr) {
          volatile size_t sink = v->Length();
          (void)sink;
        }
      },
      [&](const std::string& key, uint64_t i) {
        pdt::PString v(*rt, ValueFor(i + 1));
        map.Put(key, &v);  // frees the replaced value
      },
      nullptr);
}

}  // namespace

int main() {
  PrintHeader("Figure 12 — persistent vs volatile data types, YCSB-A on the maps",
              "J-PDT 45-50% slower than volatile; volatile bars carry a GC "
              "share; Blackhole = workload injection only");
  const uint64_t records = Scaled(4'000);
  const uint64_t ops = Scaled(60'000);

  // Blackhole: operations are not applied.
  const Breakdown bh = RunA(records, ops, [](const std::string&) {},
                            [](const std::string&, uint64_t) {}, nullptr);
  Print("Blackhole", "-", bh);

  Print("HashMap", "Volatile",
        RunVolatile<std::unordered_map<std::string, gcsim::ObjRef>>(records, ops));
  Print("HashMap", "J-PDT", RunPersistent<pdt::PStringHashMap>(records, ops));

  Print("TreeMap", "Volatile",
        RunVolatile<std::map<std::string, gcsim::ObjRef>>(records, ops));
  Print("TreeMap", "J-PDT", RunPersistent<pdt::PStringTreeMap>(records, ops));

  Print("SkipListMap", "Volatile",
        RunVolatile<pdt::SkipListMap<std::string, gcsim::ObjRef>>(records, ops));
  Print("SkipListMap", "J-PDT", RunPersistent<pdt::PStringSkipListMap>(records, ops));

  std::printf("\n(records=%llu x %u B values, ops=%llu)\n",
              static_cast<unsigned long long>(records), kValueBytes,
              static_cast<unsigned long long>(ops));
  return 0;
}
