// Ablation — map proxy-caching variants (§4.3.2).
//
// "Resurrecting a persistent object has a performance cost... to avoid this
// cost for values stored in maps and sets, J-PDT proposes different
// implementations with different trade-offs between performance and memory
// consumption": base (fresh proxy per lookup), cached (on demand), eager
// (populated at resurrection) — plus this repo's extension, a *bounded*
// cache keeping only the hottest proxies.
//
// Reports read throughput, resurrection (restart) time, and proxy-memory
// footprint for each variant under a zipfian read-only workload.
#include "bench/bench_util.h"
#include "src/pdt/pmap.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

struct VariantSpec {
  const char* name;
  pdt::ProxyCaching mode;
  uint64_t bound;  // 0 = unbounded
};

}  // namespace

int main() {
  PrintHeader("Ablation — base / cached / eager / bounded map variants",
              "§4.3.2: cached and eager trade memory for performance; eager "
              "pays at resurrection; the bounded cache keeps only hot proxies");

  const uint64_t records = Scaled(20'000);
  const uint64_t ops = Scaled(100'000);
  const VariantSpec variants[] = {
      {"base", pdt::ProxyCaching::kBase, 0},
      {"cached", pdt::ProxyCaching::kCached, 0},
      {"cached-10%", pdt::ProxyCaching::kCached, records / 10},
      {"eager", pdt::ProxyCaching::kEager, 0},
  };

  // Build one persistent map, reopen per variant so resurrection cost is
  // measured under identical contents.
  const uint64_t bytes = records * 1024 * 3 + (128ull << 20);
  nvm::PmemDevice dev(OptaneLike(bytes));
  {
    auto rt = core::JnvmRuntime::Format(&dev);
    pdt::PStringHashMap m(*rt, 2 * records);
    for (uint64_t i = 0; i < records; ++i) {
      pdt::PString v(*rt, "value-" + std::to_string(i));
      m.Put(ycsb::KeyFor(i), &v);
    }
    m.Pwb();
    m.Validate();
    rt->root().Put("map", &m);
  }

  std::printf("\n%-12s %14s %16s %16s\n", "variant", "reads/s", "resurrect(ms)",
              "proxies kept");
  for (const VariantSpec& v : variants) {
    auto rt = core::JnvmRuntime::Open(&dev);
    Stopwatch resurrect;
    const auto m = rt->root().GetAs<pdt::PStringHashMap>("map");
    m->SetCaching(v.mode, v.bound);  // eager populates here
    const double resurrect_ms = resurrect.ElapsedSec() * 1e3;

    ZipfianGenerator zipf(10'000'000'000ull, 0.99, 7);
    Stopwatch sw;
    for (uint64_t i = 0; i < ops; ++i) {
      const auto val =
          m->GetAs<pdt::PString>(ycsb::KeyFor(Mix64(zipf.Next()) % records));
      volatile uint32_t sink = val->Length();
      (void)sink;
    }
    const double tput = static_cast<double>(ops) / sw.ElapsedSec();
    std::printf("%-12s %12.1fK %16.2f %16zu\n", v.name, tput / 1e3, resurrect_ms,
                m->CachedProxies());
  }
  std::printf("\n(records=%llu, ops=%llu, zipfian reads)\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops));
  return 0;
}
