// Shared setup for the benchmark harnesses (one binary per paper table or
// figure — see DESIGN.md §4).
//
// All benchmarks run on the simulated NVMM device with an Optane-like
// latency model, the DAX file systems with a syscall cost, the
// Java-serialization cost model on the marshalling backends, and a JNI
// crossing cost on PCJ. Dataset sizes default to laptop scale; set
// JNVM_BENCH_SCALE to grow them towards the paper's (e.g. =100 on a large
// machine).
#ifndef JNVM_BENCH_BENCH_UTIL_H_
#define JNVM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>

#include "src/common/bench_env.h"
#include "src/store/fs_backend.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/pcj_backend.h"
#include "src/store/volatile_backend.h"
#include "src/ycsb/runner.h"

namespace jnvm::bench {

enum class BackendKind { kJpdt, kJpfa, kFs, kTmpfs, kNullfs, kPcj, kVolatile };

inline const char* Name(BackendKind k) {
  switch (k) {
    case BackendKind::kJpdt: return "J-PDT";
    case BackendKind::kJpfa: return "J-PFA";
    case BackendKind::kFs: return "FS";
    case BackendKind::kTmpfs: return "TmpFS";
    case BackendKind::kNullfs: return "NullFS";
    case BackendKind::kPcj: return "PCJ";
    case BackendKind::kVolatile: return "Volatile";
  }
  return "?";
}

// Optane-like asymmetry: reads slower than DRAM, fences costly (§5.1 and
// Izraelevitz et al. [25]).
inline nvm::DeviceOptions OptaneLike(uint64_t bytes) {
  nvm::DeviceOptions o;
  o.size_bytes = bytes;
  o.read_delay_ns = 80;
  o.write_delay_ns = 60;
  o.pwb_delay_ns = 10;
  o.fence_delay_ns = 150;
  return o;
}

inline fs::FsOptions DaxSyscall() {
  fs::FsOptions o;
  o.syscall_latency_ns = 1200;  // ext4-DAX syscall + VFS path
  return o;
}

struct BenchConfig {
  uint64_t records = 10'000;
  uint32_t fields = 10;
  uint32_t field_len = 100;
  double cache_ratio = 0.10;  // FS-family backends; J-NVM/PCJ run uncached (§5.3.1)
  uint64_t gc_trigger_bytes = 32ull << 20;
  uint64_t device_bytes = 0;  // 0 = auto-size from the dataset
};

// Owns the whole stack for one backend: device, runtime/fs/pool, backend,
// gc heap, and the KvStore on top.
struct Bundle {
  std::unique_ptr<nvm::PmemDevice> dev;
  std::unique_ptr<core::JnvmRuntime> rt;
  std::unique_ptr<gcsim::ManagedHeap> gc;
  std::unique_ptr<fs::SimFs> simfs;
  std::unique_ptr<pmdkx::PmdkPool> pool;
  std::unique_ptr<store::Backend> backend;
  std::unique_ptr<store::KvStore> kv;
  BackendKind kind;

  gcsim::ManagedHeap* gc_heap() { return gc.get(); }
};

inline uint64_t AutoDeviceBytes(const BenchConfig& c) {
  const uint64_t record_bytes =
      static_cast<uint64_t>(c.fields) * c.field_len + 256;
  // Blocks, chains, pairs, log headroom: ~4x the raw payload, min 64 MB.
  const uint64_t want = c.records * record_bytes * 4 + (64ull << 20);
  return want;
}

inline std::unique_ptr<Bundle> MakeBundle(BackendKind kind, const BenchConfig& c) {
  auto b = std::make_unique<Bundle>();
  b->kind = kind;
  const uint64_t bytes = c.device_bytes != 0 ? c.device_bytes : AutoDeviceBytes(c);
  store::StoreOptions sopts;
  sopts.expected_records = c.records;

  switch (kind) {
    case BackendKind::kJpdt:
    case BackendKind::kJpfa: {
      b->dev = std::make_unique<nvm::PmemDevice>(OptaneLike(bytes));
      b->rt = core::JnvmRuntime::Format(b->dev.get());
      if (kind == BackendKind::kJpdt) {
        b->backend = std::make_unique<store::JpdtBackend>(b->rt.get(), "store",
                                                          2 * c.records);
      } else {
        b->backend = std::make_unique<store::JpfaBackend>(b->rt.get(), "store.jpfa",
                                                          2 * c.records);
      }
      sopts.cache_ratio = 0.0;  // caching disabled for J-NVM backends (§5.3.1)
      b->kv = std::make_unique<store::KvStore>(b->backend.get(), nullptr, sopts);
      return b;
    }
    case BackendKind::kFs:
      b->dev = std::make_unique<nvm::PmemDevice>(OptaneLike(bytes));
      b->simfs = std::make_unique<fs::NvmFs>(b->dev.get(), 0, bytes, DaxSyscall());
      break;
    case BackendKind::kTmpfs:
      b->simfs = std::make_unique<fs::TmpFs>(bytes, DaxSyscall());
      break;
    case BackendKind::kNullfs:
      b->simfs = std::make_unique<fs::NullFs>(bytes, DaxSyscall());
      break;
    case BackendKind::kPcj: {
      b->dev = std::make_unique<nvm::PmemDevice>(OptaneLike(bytes));
      b->pool = std::make_unique<pmdkx::PmdkPool>(b->dev.get(), 0, bytes);
      store::PcjOptions popts;
      popts.nbuckets = 2 * c.records;
      popts.fields_per_record = c.fields;
      b->backend = std::make_unique<store::PcjBackend>(b->pool.get(), popts);
      sopts.cache_ratio = 0.0;
      b->kv = std::make_unique<store::KvStore>(b->backend.get(), nullptr, sopts);
      return b;
    }
    case BackendKind::kVolatile: {
      b->gc = std::make_unique<gcsim::ManagedHeap>(
          gcsim::GcOptions{.gc_trigger_bytes = c.gc_trigger_bytes});
      b->backend = std::make_unique<store::VolatileBackend>(b->gc.get());
      sopts.cache_ratio = 0.0;
      b->kv = std::make_unique<store::KvStore>(b->backend.get(), nullptr, sopts);
      return b;
    }
  }

  // FS-family tail: marshalling backend + managed cache in front.
  b->backend = std::make_unique<store::FsBackend>(b->simfs.get(), Name(kind),
                                                  store::SerCostModel::JavaLike());
  b->gc = std::make_unique<gcsim::ManagedHeap>(
      gcsim::GcOptions{.gc_trigger_bytes = c.gc_trigger_bytes});
  sopts.cache_ratio = c.cache_ratio;
  b->kv = std::make_unique<store::KvStore>(b->backend.get(), b->gc.get(), sopts);
  return b;
}

inline ycsb::WorkloadSpec SpecFor(const BenchConfig& c, ycsb::WorkloadSpec base) {
  base.record_count = c.records;
  base.fields = c.fields;
  base.field_len = c.field_len;
  return base;
}

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("(absolute numbers differ — simulated NVMM, 1 core; the shape\n");
  std::printf(" is the reproduction target. JNVM_BENCH_SCALE=%g)\n", BenchScale());
  std::printf("==============================================================\n");
}

}  // namespace jnvm::bench

#endif  // JNVM_BENCH_BENCH_UTIL_H_
