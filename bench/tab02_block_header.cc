// Table 2 — "The block header and its associated states".
//
// Prints the header encoding and verifies each state transition on a live
// heap: master blocks (valid/invalid), slave blocks, and free blocks.
#include <cstdio>

#include "src/heap/heap.h"

using namespace jnvm;

int main() {
  std::printf("Table 2 — block header (one 64-bit word per block)\n\n");
  std::printf("  %-12s %-10s %-12s state\n", "id (15 bits)", "valid (1)",
              "next (48)");
  std::printf("  %-12s %-10s %-12s %s\n", "class", "0", "any", "invalid object");
  std::printf("  %-12s %-10s %-12s %s\n", "class", "1", "any", "valid object");
  std::printf("  %-12s %-10s %-12s %s\n", "0", "0", "any", "free or slave");

  // Verify against a live heap.
  nvm::DeviceOptions o;
  o.size_bytes = 4 << 20;
  nvm::PmemDevice dev(o);
  auto h = heap::Heap::Format(&dev, heap::HeapOptions{});
  const uint16_t id = h->InternClassId("tab2.Demo");

  const nvm::Offset m = h->AllocObject(id, 600);  // 3-block chain
  heap::BlockHeader master = h->ReadHeader(m);
  std::printf("\nlive checks on a 3-block object:\n");
  std::printf("  fresh master: id=%u valid=%d next=%llu  (invalid object)\n",
              master.id, master.valid,
              static_cast<unsigned long long>(master.next));
  JNVM_CHECK(master.id == id && !master.valid && master.next != 0);

  std::vector<nvm::Offset> blocks;
  h->CollectBlocks(m, &blocks);
  const heap::BlockHeader slave = h->ReadHeader(blocks[1]);
  std::printf("  slave block : id=%u valid=%d next=%llu  (slave)\n", slave.id,
              slave.valid, static_cast<unsigned long long>(slave.next));
  JNVM_CHECK(slave.id == 0 && !slave.valid);

  h->SetValid(m);
  master = h->ReadHeader(m);
  std::printf("  validated   : id=%u valid=%d             (valid object)\n",
              master.id, master.valid);
  JNVM_CHECK(master.valid);

  h->FreeObject(m);
  master = h->ReadHeader(m);
  std::printf("  after free  : id=%u valid=%d             (invalid, recyclable)\n",
              master.id, master.valid);
  JNVM_CHECK(!master.valid);

  std::printf("\nheader constants: id mask=0x%llx, valid bit=0x%llx, "
              "next shift=%llu — block size %u B, payload %u B\n",
              static_cast<unsigned long long>(heap::kIdMask),
              static_cast<unsigned long long>(heap::kValidBit),
              static_cast<unsigned long long>(heap::kNextShift), h->block_size(),
              h->payload_per_block());
  std::printf("all states verified.\n");
  return 0;
}
