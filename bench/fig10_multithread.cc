// Figure 10 — multi-threaded YCSB-A and YCSB-C throughput (1–20 threads)
// for J-PDT, FS and Volatile.
//
// Paper result: J-PDT's proxies introduce no scalability bottleneck — its
// peak even edges past Volatile (GC pressure); FS stays >5× below J-PDT.
//
// NOTE: this machine exposes a single core, so no configuration can show
// parallel speed-up; the reproducible shape is the *ordering* at every
// thread count (J-PDT ≥ Volatile-comparable, FS ~5× lower).
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

int main() {
  PrintHeader("Figure 10 — throughput (Kops/s) vs threads, YCSB-A and YCSB-C",
              "paper peaks: J-PDT ~1.1/2.3 Mops/s (A/C), slightly above "
              "Volatile; FS >5x slower at peak (80-core machine)");

  BenchConfig cfg;
  cfg.records = Scaled(5'000);
  const uint64_t ops = Scaled(20'000);
  const uint32_t threads[] = {1, 2, 4, 8, 16, 20};
  const BackendKind kinds[] = {BackendKind::kJpdt, BackendKind::kFs,
                               BackendKind::kVolatile};

  for (const auto& base : {ycsb::WorkloadSpec::A(), ycsb::WorkloadSpec::C()}) {
    std::printf("\nYCSB-%s\n%-9s", base.name.c_str(), "threads");
    for (const BackendKind k : kinds) {
      std::printf("%12s", Name(k));
    }
    std::printf("\n");
    for (const uint32_t t : threads) {
      std::printf("%-9u", t);
      for (const BackendKind k : kinds) {
        auto b = MakeBundle(k, cfg);
        const auto spec = SpecFor(cfg, base);
        ycsb::LoadPhase(b->kv.get(), spec);
        const auto r = ycsb::RunPhase(b->kv.get(), spec, ops, t, 42);
        std::printf("%10.1fK", r.throughput_ops_s / 1e3);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(records=%llu, ops=%llu per cell; 1 physical core)\n",
              static_cast<unsigned long long>(cfg.records),
              static_cast<unsigned long long>(ops));
  return 0;
}
