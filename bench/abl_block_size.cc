// Ablation — block size (§5.3.5).
//
// The paper: "During our experiments, we use a block size of 256 B. We
// measured that this size provides the best overall performance, because
// NVMM uses internally also a cache line of 256 B. With small fields
// (100 B) the NVMM space lost due to the block headers and the internal
// fragmentation accounts for 21.2% per record. This reduces to 9.4% with
// larger fields (10 KB)."
//
// This ablation sweeps the block size and reports J-PDT YCSB-A throughput
// plus the NVMM space overhead per record for both field sizes.
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

// NVMM bytes consumed by one record's persistent structure (record chain +
// pair + key slot share) at a given block size.
double SpaceOverheadPct(uint32_t block_size, uint32_t fields, uint32_t field_len) {
  const uint64_t payload = static_cast<uint64_t>(fields) * field_len;
  const uint32_t ppb = block_size - 8;
  // PRecord: 8 B header + (4 + field_len) per field, chained.
  const uint64_t record_bytes = 8 + static_cast<uint64_t>(fields) * (4 + field_len);
  const uint64_t record_blocks = (record_bytes + ppb - 1) / ppb;
  const uint64_t used = record_blocks * block_size   // record chain
                        + block_size                 // pair block
                        + 32;                        // pooled key share
  return 100.0 * (static_cast<double>(used) - static_cast<double>(payload)) /
         static_cast<double>(used);
}

}  // namespace

int main() {
  PrintHeader("Ablation — heap block size (J-PDT, YCSB-A)",
              "paper picked 256 B: best performance (NVMM 256 B internal "
              "line), 21.2% space overhead at 100 B fields, 9.4% at 10 KB");

  const uint64_t ops = Scaled(20'000);
  std::printf("\n%-10s %14s %18s %18s\n", "block", "throughput",
              "overhead(100B)", "overhead(10KB)");
  for (const uint32_t bs : {64u, 128u, 256u, 512u, 1024u}) {
    BenchConfig cfg;
    cfg.records = Scaled(5'000);

    nvm::PmemDevice dev(OptaneLike(AutoDeviceBytes(cfg) * 2));
    core::RuntimeOptions ropts;
    ropts.heap.block_size = bs;
    auto rt = core::JnvmRuntime::Format(&dev, ropts);
    store::JpdtBackend backend(rt.get(), "store", 2 * cfg.records);
    store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    store::KvStore kv(&backend, nullptr, sopts);

    const auto spec = SpecFor(cfg, ycsb::WorkloadSpec::A());
    ycsb::LoadPhase(&kv, spec);
    const auto r = ycsb::RunPhase(&kv, spec, ops, 1, 42);
    std::printf("%7uB %12.1fK/s %16.1f%% %16.1f%%\n", bs,
                r.throughput_ops_s / 1e3, SpaceOverheadPct(bs, 10, 100),
                SpaceOverheadPct(bs, 10, 10'000));
  }
  std::printf("\nSmaller blocks: longer chains, more header reads per access.\n"
              "Larger blocks: fewer chain hops but more internal fragmentation\n"
              "and coarser failure-atomic in-flight copies.\n");
  return 0;
}
