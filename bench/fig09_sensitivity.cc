// Figure 9 — sensitivity of J-PDT vs FS to (a) the cache ratio, (b) the
// number of records, (c) the number of fields, (d) the record size.
// Reports read and update latency (YCSB-A), like the paper's four panels.
//
// Paper results:
//  (a) J-PDT flat (reads 1.7→1.2 us, updates 2.6→2.1 us); FS reads improve
//      with cache (32.5→0.8 us), FS updates don't (write-through);
//  (b) both flat in the number of records;
//  (c) FS reads 17.7 us → 22.3 ms from 10 to 10k fields; J-PDT 1.7→7.0 us;
//  (d) FS 17.5 us → 1.6 ms (reads) / 71 us → 6.5 ms (updates) from 1 KB to
//      1 MB records; J-PDT reads 2.4→4.0 us, updates 3.2→14.6 us.
#include "bench/bench_util.h"

using namespace jnvm;
using namespace jnvm::bench;

namespace {

struct Cell {
  double read_us;
  double update_us;
};

Cell Measure(BackendKind kind, const BenchConfig& cfg, uint64_t ops) {
  auto b = MakeBundle(kind, cfg);
  const auto spec = SpecFor(cfg, ycsb::WorkloadSpec::A());
  ycsb::LoadPhase(b->kv.get(), spec);
  const auto r = ycsb::RunPhase(b->kv.get(), spec, ops, 1, 42);
  return {r.read.mean_ns() / 1e3, r.update.mean_ns() / 1e3};
}

void PrintRow(const char* label, Cell jpdt, Cell fsb) {
  std::printf("%-14s %10.1f %12.1f %12.1f %12.1f\n", label, jpdt.read_us,
              jpdt.update_us, fsb.read_us, fsb.update_us);
}

void Header(const char* panel) {
  std::printf("\n--- %s ---\n", panel);
  std::printf("%-14s %10s %12s %12s %12s\n", "", "JPDT-read", "JPDT-update",
              "FS-read", "FS-update");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "abcd";
  PrintHeader("Figure 9 — latency (us) sensitivity: J-PDT vs FS",
              "see panel annotations; J-PDT stays flat, FS explodes with "
              "fields/record size, FS reads need a big cache");
  const uint64_t ops = Scaled(6'000);

  if (which.find('a') != std::string::npos) {
    Header("(a) cache ratio, 2k records x 10 x 100B");
    for (const double ratio : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      BenchConfig cfg;
      cfg.records = Scaled(2'000);
      cfg.cache_ratio = ratio;  // only affects FS; J-PDT runs uncached
      char label[32];
      std::snprintf(label, sizeof(label), "cache %3.0f%%", ratio * 100);
      PrintRow(label, Measure(BackendKind::kJpdt, cfg, ops),
               Measure(BackendKind::kFs, cfg, ops));
    }
  }

  if (which.find('b') != std::string::npos) {
    Header("(b) number of records (10% cache)");
    for (const uint64_t n : {1'000ull, 4'000ull, 16'000ull, 64'000ull}) {
      BenchConfig cfg;
      cfg.records = Scaled(n);
      char label[32];
      std::snprintf(label, sizeof(label), "%llu rec",
                    static_cast<unsigned long long>(cfg.records));
      PrintRow(label, Measure(BackendKind::kJpdt, cfg, ops),
               Measure(BackendKind::kFs, cfg, ops));
    }
  }

  if (which.find('c') != std::string::npos) {
    Header("(c) fields per record (constant dataset size)");
    for (const uint32_t fields : {10u, 100u, 1'000u, 10'000u}) {
      BenchConfig cfg;
      cfg.fields = fields;
      cfg.field_len = 100;
      cfg.records = Scaled(20'000) / fields * 10;  // constant bytes
      if (cfg.records == 0) cfg.records = 10;
      char label[32];
      std::snprintf(label, sizeof(label), "%u fields", fields);
      const uint64_t cell_ops = fields >= 1'000 ? ops / 20 : ops;
      PrintRow(label, Measure(BackendKind::kJpdt, cfg, cell_ops),
               Measure(BackendKind::kFs, cfg, cell_ops));
    }
  }

  if (which.find('d') != std::string::npos) {
    Header("(d) record size, 10 fields (constant dataset size)");
    for (const uint32_t kb : {1u, 10u, 100u, 1'000u}) {
      BenchConfig cfg;
      cfg.fields = 10;
      cfg.field_len = kb * 100;  // record = kb KB
      cfg.records = Scaled(2'000) / kb;
      if (cfg.records < 10) cfg.records = 10;
      char label[32];
      std::snprintf(label, sizeof(label), "%uKB rec", kb);
      const uint64_t cell_ops = kb >= 100 ? ops / 20 : ops;
      PrintRow(label, Measure(BackendKind::kJpdt, cfg, cell_ops),
               Measure(BackendKind::kFs, cfg, cell_ops));
    }
  }
  return 0;
}
