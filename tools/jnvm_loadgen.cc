// jnvm_loadgen — closed-loop load generator for jnvm_server.
//
//   jnvm_loadgen --port=N [--host=A] [--threads=N] [--keys=N]
//                [--value-size=N] [--read-ratio=F] [--field-updates]
//                [--pipeline=N] [--ops=N] [--seconds=F] [--no-preload]
//                [--seed=N] [--readonly] [--expect-hits]
//                [--allow-waittimeout] [--stats] [--shutdown]
//                [--read-from=primary|replica] [--read-endpoints=H:P,...]
//                [--consistency=none|session] [--shards=N] [--allow-stale]
//                [--ycsb=b|c] [--txn=K] [--cross-shard-pct=P] [--txn-verify]
//                [--allow-disconnect] [--cluster[=H:P,...]]
//                [--cluster-nodes=H:P,...] [--cluster-verify]
//
// ---- Cluster mode (DESIGN.md §10) ------------------------------------------
// --cluster switches every thread to a redirect-following ClusterClient
// seeded from --host/--port (or the given seed list). Writes stay on a
// thread's own slice of the key space (key k belongs to thread k mod
// --threads, so each key has exactly one writer and its acked values are
// totally ordered); reads roam the whole space. -MOVED/-ASK/-TRYAGAIN
// replies are followed inside the client and counted in the summary — the
// loop itself never sees a redirect, which is how a run *sustains* writes
// across a live resharding.
//
// --cluster-verify sweeps every key after the loop: the routed GET must
// return the last value this run acked for the key (a deterministic
// "<k>:<version>:" stamp, so a separate --readonly --ops=0 verify run can
// still type-check values it did not write), and a direct probe of every
// node (--cluster-nodes, defaulting to the owners advertised by CLUSTER
// SLOTS) must find the key served by EXACTLY one node with every other
// node answering an explicit -MOVED/-ASK redirect. A value or a nil from a
// second node is the wrong-node silent success the routing layer forbids.
//
// ---- Transactions (DESIGN.md §9) ------------------------------------------
// --txn=K switches every thread to MULTI/EXEC batches of K SETs. The key
// space is carved into `--keys` disjoint *groups* of K keys each; a txn
// rewrites one whole group with one value, and a group's writers are
// serialized (each group belongs to one thread's slice), so at every moment
// a group's keys must either all be absent or all carry the same value —
// the all-or-nothing oracle. Group g targets a single shard when
// (g % 100) >= P and spans shards otherwise (--cross-shard-pct, default 50);
// key derivation is a pure function of (g, K, shards), so a later
// --txn-verify run (e.g. against a promoted replica after kill -9) can
// recompute every group and assert the oracle with no state handoff.
// -TXNABORT replies count as aborts (nothing applied), not errors.
// --txn-verify with --readonly only verifies; --allow-disconnect makes an
// I/O failure stop the thread quietly (the CI kill-the-primary scenario).
//
// Each thread drives its own connection: preloads its slice of the key
// space with pipelined SETs, then runs a closed loop of GET (read-ratio)
// and SET — or HSET with --field-updates — over uniformly random keys,
// recording per-operation latency into log-bucketed histograms
// (src/common/histogram). --seconds bounds wall-clock time (CI smoke);
// --ops bounds per-thread operation count; whichever trips first wins.
//
// --seed fixes the RNG base (thread t uses seed+t) so a run is
// reproducible; the effective seed is echoed in the summary line.
// --readonly drives replicas: no preload, pure GETs (a follower answers
// writes with -READONLY, which would count as an error). --expect-hits
// additionally fails the run when any GET misses — how the replication e2e
// asserts that every acknowledged key survived promotion.
//
// Against a --wait-acks primary a write may answer -WAITTIMEOUT (locally
// durable, replica quorum missed). Those replies are counted separately and
// reported in the summary; they are fatal unless --allow-waittimeout is
// given, so a synchronous-replication CI pass proves every write was acked.
//
// Exit status is non-zero on any error reply or I/O failure — the CI smoke
// test relies on this.
//
// ---- Replica read routing (DESIGN.md §8) ----------------------------------
// --read-from=replica splits the YCSB traffic: writes (and the preload)
// still go to the primary at --host/--port, reads round-robin across the
// --read-endpoints list (replica host:port pairs). --read-ratio=0.95 is the
// YCSB-B split, 1.0 is YCSB-C (--ycsb=b|c sets them). --shards must match
// the servers' shard count — the client routes keys with the same FNV-1a
// hash to track per-shard sequence numbers.
//
// --consistency=session turns on read-your-writes: after each acked write
// the worker captures the shard's sealed seq with a pipelined LASTSEQ, and
// before reading the key on a replica raises that connection's MINSEQ token
// (per-endpoint per-shard bookkeeping — tokens are connection state, so
// every endpoint tracks its own floor). A replica behind the token parks
// the read until its applied watermark catches up or answers -STALE; -STALE
// replies are counted and fatal unless --allow-stale. With --expect-hits
// the run proves session reads never miss keys written through the primary
// (threads barrier between the preload and the read phase so no thread
// reads a slice another thread has not preloaded yet).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster_client.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/server/client.h"
#include "src/server/shard.h"

namespace {

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t threads = 4;
  uint64_t keys = 10'000;
  uint32_t value_size = 100;
  double read_ratio = 0.5;
  bool field_updates = false;  // writes become HSET key 0 <value>
  uint32_t pipeline = 1;
  uint64_t ops_per_thread = 20'000;
  double seconds = 0.0;  // 0 = unbounded (use --ops)
  bool preload = true;
  bool dump_stats = false;
  bool shutdown_after = false;
  uint64_t seed = 0x10ad;  // thread t seeds its RNG with seed + t
  bool readonly = false;   // pure GETs, no preload (replica driving)
  bool expect_hits = false;  // any GET miss fails the run
  bool allow_waittimeout = false;  // -WAITTIMEOUT replies are not fatal

  // Replica read routing + session consistency.
  bool read_from_replica = false;
  std::vector<Endpoint> read_endpoints;
  bool session = false;      // --consistency=session
  uint32_t shards = 4;       // must match the servers' --shards
  bool allow_stale = false;  // -STALE read replies are not fatal

  // Transactions (--txn mode; see header comment).
  uint32_t txn_ops = 0;          // K ops per MULTI/EXEC batch; 0 = off
  uint32_t cross_shard_pct = 50; // % of groups that span shards
  bool txn_verify = false;       // all-or-nothing sweep over every group
  bool allow_disconnect = false; // I/O failure = quiet stop, not an error

  // Cluster mode (--cluster; see header comment).
  bool cluster = false;
  std::vector<std::string> cluster_seeds;  // defaults to host:port
  std::vector<std::string> cluster_nodes;  // probe list for --cluster-verify
  bool cluster_verify = false;  // exactly-once sweep over every key
};

// Spin barrier between the preload and the read phase: with session reads
// and --expect-hits no thread may read a slice another thread is still
// preloading.
struct Barrier {
  std::atomic<uint32_t> arrived{0};
  uint32_t total = 0;
  // `abort` breaks the wait when another thread failed before arriving
  // (otherwise the survivors would spin forever).
  void Wait(const std::atomic<bool>& abort) {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    while (arrived.load(std::memory_order_acquire) < total &&
           !abort.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

struct ThreadResult {
  jnvm::Histogram read_lat;
  jnvm::Histogram write_lat;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t misses = 0;
  uint64_t errors = 0;
  uint64_t wait_timeouts = 0;  // -WAITTIMEOUT write replies
  uint64_t stale_reads = 0;    // -STALE session-read replies
  uint64_t txn_commits = 0;    // EXEC answered with its reply array
  uint64_t txn_aborts = 0;     // EXEC answered -TXNABORT (nothing applied)
  uint64_t txn_groups = 0;     // groups checked by --txn-verify
  uint64_t moved_redirects = 0;    // -MOVED replies followed (cluster mode)
  uint64_t ask_redirects = 0;      // -ASK replies followed
  uint64_t tryagain_retries = 0;   // -TRYAGAIN waits (frozen handoff)
  uint64_t slot_refreshes = 0;     // CLUSTER SLOTS table refreshes
  uint64_t cluster_keys = 0;       // keys passing the exactly-once sweep
  std::string error_msg;
};

bool IsWaitTimeout(const jnvm::server::RespReply& r) {
  return r.type == jnvm::server::RespReply::Type::kError &&
         r.str.rfind("WAITTIMEOUT", 0) == 0;
}

bool IsStale(const jnvm::server::RespReply& r) {
  return r.type == jnvm::server::RespReply::Type::kError &&
         r.str.rfind("STALE", 0) == 0;
}

std::string KeyName(uint64_t i) { return "key:" + std::to_string(i); }

std::string ValueFor(uint64_t key_index, uint64_t version, uint32_t size) {
  std::string v = std::to_string(key_index) + ":" + std::to_string(version) + ":";
  if (v.size() < size) {
    v.append(size - v.size(), 'v');
  } else {
    v.resize(size);
  }
  return v;
}

// The replica-routed YCSB round: writes (with session LASTSEQ piggybacks)
// on the primary connection, reads (with session MINSEQ preludes) on one of
// the replica connections — round-robin per round so every endpoint's
// per-shard token bookkeeping is exercised. Returns false on failure.
bool ReplicaRound(const Config& cfg, jnvm::Xorshift& rng, uint32_t n,
                  jnvm::server::Client* primary,
                  std::vector<std::unique_ptr<jnvm::server::Client>>& replicas,
                  uint32_t ep, std::vector<uint64_t>& last_seq,
                  std::vector<std::vector<uint64_t>>& sent_token,
                  uint64_t version, std::atomic<bool>* failed,
                  ThreadResult* res) {
  jnvm::server::Client* rd = replicas[ep].get();
  std::vector<jnvm::server::RespReply> replies;
  // Plan the round, then pipe writes and reads to their connections.
  uint32_t nw = 0;
  std::vector<uint64_t> write_shards;  // session: LASTSEQ piggyback order
  std::vector<uint8_t> read_kind;     // 0 = MINSEQ prelude, 1 = GET
  uint32_t nreads = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t k = rng.NextBelow(cfg.keys);
    const std::string key = KeyName(k);
    const bool read = cfg.readonly || rng.NextDouble() < cfg.read_ratio;
    const uint32_t s = jnvm::server::ShardFor(key, cfg.shards);
    if (read) {
      if (cfg.session && last_seq[s] > sent_token[ep][s]) {
        rd->PipeCommand({"MINSEQ", std::to_string(s),
                         std::to_string(last_seq[s])});
        sent_token[ep][s] = last_seq[s];
        read_kind.push_back(0);
      }
      rd->PipeGet(key);
      read_kind.push_back(1);
      ++nreads;
    } else {
      if (cfg.field_updates) {
        primary->PipeHset(key, 0, ValueFor(k, version, cfg.value_size));
      } else {
        primary->PipeSet(key, ValueFor(k, version, cfg.value_size));
      }
      if (cfg.session) {
        primary->PipeCommand({"LASTSEQ", std::to_string(s)});
        write_shards.push_back(s);
      }
      ++nw;
    }
  }
  // Writes first: the session tokens captured here order the reads after
  // this round's own writes (read-your-writes across connections).
  if (nw > 0) {
    const uint64_t t0 = jnvm::NowNs();
    if (!primary->Sync(&replies)) {
      res->error_msg = "write sync: " + primary->last_error();
      res->errors++;
      failed->store(true);
      return false;
    }
    const uint64_t per_op = (jnvm::NowNs() - t0) / nw;
    for (size_t i = 0; i < replies.size(); ++i) {
      const auto& r = replies[i];
      const bool is_lastseq = cfg.session && (i % 2) == 1;
      if (is_lastseq) {
        if (r.type != jnvm::server::RespReply::Type::kInteger) {
          res->error_msg = "LASTSEQ reply: " + r.str;
          res->errors++;
          failed->store(true);
          return false;
        }
        const uint32_t s = static_cast<uint32_t>(write_shards[i / 2]);
        const uint64_t seq = static_cast<uint64_t>(r.integer);
        if (seq > last_seq[s]) {
          last_seq[s] = seq;
        }
        continue;
      }
      if (IsWaitTimeout(r)) {
        res->wait_timeouts++;
        if (!cfg.allow_waittimeout) {
          res->error_msg = "reply: " + r.str;
          res->errors++;
          failed->store(true);
          return false;
        }
      } else if (r.type == jnvm::server::RespReply::Type::kError) {
        res->error_msg = "reply: " + r.str;
        res->errors++;
        failed->store(true);
        return false;
      }
      res->write_lat.Record(per_op);
      res->writes++;
    }
  }
  if (nreads > 0) {
    const uint64_t t0 = jnvm::NowNs();
    if (!rd->Sync(&replies)) {
      res->error_msg = "read sync: " + rd->last_error();
      res->errors++;
      failed->store(true);
      return false;
    }
    // Read latency includes any replica-side staleness wait (parked reads).
    const uint64_t per_op = (jnvm::NowNs() - t0) / nreads;
    for (size_t i = 0; i < replies.size(); ++i) {
      const auto& r = replies[i];
      if (i < read_kind.size() && read_kind[i] == 0) {
        if (r.type == jnvm::server::RespReply::Type::kError) {
          res->error_msg = "MINSEQ reply: " + r.str;
          res->errors++;
          failed->store(true);
          return false;
        }
        continue;
      }
      if (IsStale(r)) {
        res->stale_reads++;
        if (!cfg.allow_stale) {
          res->error_msg = "reply: " + r.str;
          res->errors++;
          failed->store(true);
          return false;
        }
        continue;
      }
      if (r.type == jnvm::server::RespReply::Type::kError) {
        res->error_msg = "reply: " + r.str;
        res->errors++;
        failed->store(true);
        return false;
      }
      res->read_lat.Record(per_op);
      res->reads++;
      if (r.type == jnvm::server::RespReply::Type::kNil) {
        res->misses++;
      }
    }
  }
  return true;
}

// ---- Transaction mode (--txn) ---------------------------------------------

std::string TxnKeyName(uint64_t g, uint32_t j) {
  return "txn:" + std::to_string(g) + ":" + std::to_string(j);
}

// Pure function of (g, K, shards): a verify run recomputes the exact keys a
// load run wrote without any state handoff.
std::vector<std::string> TxnGroupKeys(const Config& cfg, uint64_t g) {
  std::vector<std::string> keys;
  keys.reserve(cfg.txn_ops);
  if (g % 100 < cfg.cross_shard_pct) {
    // Cross-shard group: consecutive probe keys land on hash-random shards.
    for (uint32_t j = 0; j < cfg.txn_ops; ++j) {
      keys.push_back(TxnKeyName(g, j));
    }
    return keys;
  }
  // Single-shard group: probe until K keys hash to the group's home shard —
  // this txn exercises the one-record kTxnExec fast path.
  const uint32_t target = static_cast<uint32_t>(g % cfg.shards);
  for (uint32_t j = 0; keys.size() < cfg.txn_ops; ++j) {
    std::string key = TxnKeyName(g, j);
    if (jnvm::server::ShardFor(key, cfg.shards) == target) {
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

void TxnWorker(const Config& cfg, uint32_t tid, uint64_t deadline_ns,
               std::atomic<bool>* failed, ThreadResult* res) {
  std::string err;
  auto client = jnvm::server::Client::Connect(cfg.host, cfg.port, &err);
  if (client == nullptr) {
    res->errors++;
    res->error_msg = "connect: " + err;
    failed->store(true);
    return;
  }
  auto io_fail = [&](const std::string& what) {
    if (cfg.allow_disconnect) {
      return;  // the CI kill scenario: the server died under us, by design
    }
    res->errors++;
    res->error_msg = what + ": " + client->last_error();
    failed->store(true);
  };
  const uint64_t ngroups = cfg.keys;
  jnvm::Xorshift rng(cfg.seed + tid);
  std::vector<jnvm::server::RespReply> replies;

  if (!cfg.readonly) {
    // Each thread owns the groups g ≡ tid (mod threads): one group has one
    // writer connection, so its committed values are totally ordered and
    // the group's keys must always agree.
    const uint64_t slice = (ngroups + cfg.threads - 1) / cfg.threads;
    for (uint64_t n = 0; n < cfg.ops_per_thread; ++n) {
      if (deadline_ns != 0 && jnvm::NowNs() >= deadline_ns) {
        break;
      }
      if (failed->load(std::memory_order_relaxed)) {
        return;
      }
      uint64_t g = tid + cfg.threads * rng.NextBelow(slice);
      if (g >= ngroups) {
        g = tid % ngroups;
      }
      const std::vector<std::string> keys = TxnGroupKeys(cfg, g);
      const std::string value = "g" + std::to_string(g) + ":v" +
                                std::to_string(n + 1) + ":t" +
                                std::to_string(tid);
      client->PipeCommand({"MULTI"});
      for (const std::string& k : keys) {
        client->PipeCommand({"SET", k, value});
      }
      client->PipeCommand({"EXEC"});
      const uint64_t t0 = jnvm::NowNs();
      if (!client->Sync(&replies)) {
        io_fail("txn sync");
        return;
      }
      res->write_lat.Record(jnvm::NowNs() - t0);
      const jnvm::server::RespReply& ex = replies.back();
      if (ex.type == jnvm::server::RespReply::Type::kArray) {
        res->txn_commits++;
        res->writes += keys.size();
        for (const auto& r : ex.elements) {
          if (r.type != jnvm::server::RespReply::Type::kSimple) {
            res->errors++;
            res->error_msg = "txn op reply: " + r.str;
            failed->store(true);
            return;
          }
        }
      } else if (ex.type == jnvm::server::RespReply::Type::kError &&
                 ex.str.rfind("TXNABORT", 0) == 0) {
        res->txn_aborts++;  // all-or-nothing refusal: nothing applied
      } else if (IsWaitTimeout(ex)) {
        res->wait_timeouts++;
        if (!cfg.allow_waittimeout) {
          res->errors++;
          res->error_msg = "reply: " + ex.str;
          failed->store(true);
          return;
        }
        res->txn_commits++;  // committed locally, quorum missed
        res->writes += keys.size();
      } else {
        res->errors++;
        res->error_msg = "EXEC reply: " + ex.str;
        failed->store(true);
        return;
      }
    }
  }

  if (!cfg.txn_verify) {
    return;
  }
  // All-or-nothing oracle: every group's K keys must agree — all absent or
  // all carrying one value stamped with this group's id. Any split is a
  // partial txn apply, the one outcome the protocol forbids.
  for (uint64_t g = tid; g < ngroups; g += cfg.threads) {
    const std::vector<std::string> keys = TxnGroupKeys(cfg, g);
    for (const std::string& k : keys) {
      client->PipeGet(k);
    }
    if (!client->Sync(&replies)) {
      io_fail("verify sync");
      return;
    }
    bool any_nil = false;
    bool any_val = false;
    std::string v0;
    for (const auto& r : replies) {
      if (r.type == jnvm::server::RespReply::Type::kNil) {
        any_nil = true;
      } else if (r.type == jnvm::server::RespReply::Type::kBulk) {
        if (any_val && r.str != v0) {
          res->errors++;
          res->error_msg = "ATOMICITY VIOLATION group " + std::to_string(g) +
                           ": '" + v0 + "' vs '" + r.str + "'";
          failed->store(true);
          return;
        }
        v0 = r.str;
        any_val = true;
      } else {
        res->errors++;
        res->error_msg = "verify reply: " + r.str;
        failed->store(true);
        return;
      }
    }
    if (any_nil && any_val) {
      res->errors++;
      res->error_msg = "ATOMICITY VIOLATION group " + std::to_string(g) +
                       ": some keys written, some absent";
      failed->store(true);
      return;
    }
    if (any_val &&
        v0.rfind("g" + std::to_string(g) + ":", 0) != 0) {
      res->errors++;
      res->error_msg = "verify: group " + std::to_string(g) +
                       " carries foreign value '" + v0 + "'";
      failed->store(true);
      return;
    }
    res->txn_groups++;
  }
}

// ---- Cluster mode (--cluster) ---------------------------------------------

// Folds the redirect counters into the thread result on every exit path —
// a failed run still reports how many hops it took to fail.
struct ClusterStatsGuard {
  jnvm::cluster::ClusterClient* cc;
  ThreadResult* res;
  ~ClusterStatsGuard() {
    if (cc == nullptr) {
      return;
    }
    const auto& s = cc->stats();
    res->moved_redirects += s.moved_redirects;
    res->ask_redirects += s.ask_redirects;
    res->tryagain_retries += s.tryagain_retries;
    res->slot_refreshes += s.slot_refreshes;
  }
};

// Direct single-node GET for the exactly-once sweep. Retries -TRYAGAIN (a
// frozen handoff that has not flipped yet) with a bounded wait; every other
// outcome is returned to the caller for judgement.
bool ProbeNode(std::map<std::string, std::unique_ptr<jnvm::server::Client>>&
                   direct,
               const std::string& addr, const std::string& key,
               jnvm::server::RespReply* reply, std::string* err) {
  auto it = direct.find(addr);
  if (it == direct.end()) {
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      *err = "bad node address: " + addr;
      return false;
    }
    std::string cerr;
    auto c = jnvm::server::Client::Connect(
        addr.substr(0, colon),
        static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1)), &cerr);
    if (c == nullptr) {
      *err = "connect " + addr + ": " + cerr;
      return false;
    }
    it = direct.emplace(addr, std::move(c)).first;
  }
  for (uint32_t attempt = 0; attempt < 500; ++attempt) {
    if (!it->second->Roundtrip({"GET", key}, reply)) {
      *err = "probe " + addr + ": " + it->second->last_error();
      direct.erase(it);
      return false;
    }
    if (reply->type == jnvm::server::RespReply::Type::kError &&
        reply->str.rfind("TRYAGAIN", 0) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    return true;
  }
  *err = "probe " + addr + ": slot frozen too long";
  return false;
}

void ClusterWorker(const Config& cfg, uint32_t tid, uint64_t deadline_ns,
                   std::atomic<bool>* failed, ThreadResult* res) {
  jnvm::cluster::ClusterClientOptions copts;
  copts.seeds = cfg.cluster_seeds;
  std::string err;
  auto cc = jnvm::cluster::ClusterClient::Connect(copts, &err);
  if (cc == nullptr) {
    res->errors++;
    res->error_msg = "cluster connect: " + err;
    failed->store(true);
    return;
  }
  ClusterStatsGuard guard{cc.get(), res};
  auto fail = [&](const std::string& what) {
    res->errors++;
    res->error_msg = what;
    failed->store(true);
  };
  // I/O failure mid-run (the CI kill scenario): stop quietly, skip verify —
  // the judgement run happens against the recovered fleet.
  auto op_fail = [&](const std::string& what) {
    if (!cfg.allow_disconnect) {
      fail(what + ": " + cc->last_error());
    }
  };

  // Last value each of this thread's keys was acked with: the loop's own
  // loss oracle for the verify sweep. Single writer per key (k ≡ tid mod
  // threads), so "last acked" is well defined.
  std::map<uint64_t, std::string> acked;
  const uint64_t slice = (cfg.keys + cfg.threads - 1) / cfg.threads;

  if (cfg.preload) {
    for (uint64_t k = tid; k < cfg.keys; k += cfg.threads) {
      const std::string v = ValueFor(k, 0, cfg.value_size);
      if (!cc->Set(KeyName(k), v)) {
        op_fail("preload " + KeyName(k));
        return;
      }
      acked[k] = v;
      res->writes++;
    }
  }

  jnvm::Xorshift rng(cfg.seed + tid);
  uint64_t version = 1;
  for (uint64_t done = 0; done < cfg.ops_per_thread; ++done) {
    if (deadline_ns != 0 && jnvm::NowNs() >= deadline_ns) {
      break;
    }
    if (failed->load(std::memory_order_relaxed)) {
      return;
    }
    const bool read = cfg.readonly || rng.NextDouble() < cfg.read_ratio;
    if (read) {
      const uint64_t k = rng.NextBelow(cfg.keys);
      const uint64_t t0 = jnvm::NowNs();
      const auto v = cc->Get(KeyName(k));
      res->read_lat.Record(jnvm::NowNs() - t0);
      res->reads++;
      if (!v.has_value()) {
        if (!cc->last_error().empty()) {
          op_fail("get " + KeyName(k));
          return;
        }
        res->misses++;
      } else if (v->rfind(std::to_string(k) + ":", 0) != 0) {
        // A value stamped for a different key: the routing layer handed the
        // read to a node that served someone else's slot.
        fail("ROUTING VIOLATION " + KeyName(k) + ": foreign value '" + *v +
             "'");
        return;
      }
    } else {
      uint64_t k = tid + cfg.threads * rng.NextBelow(slice);
      if (k >= cfg.keys) {
        k = tid % cfg.keys;
      }
      const std::string v = ValueFor(k, version++, cfg.value_size);
      const uint64_t t0 = jnvm::NowNs();
      if (!cc->Set(KeyName(k), v)) {
        op_fail("set " + KeyName(k));
        return;
      }
      res->write_lat.Record(jnvm::NowNs() - t0);
      res->writes++;
      acked[k] = v;
    }
  }

  if (!cfg.cluster_verify || failed->load(std::memory_order_relaxed)) {
    return;
  }
  // The exactly-once sweep. Refresh the table first — the whole point is to
  // judge the post-resharding state, not the table the run started with.
  cc->RefreshSlots();
  std::vector<std::string> nodes = cfg.cluster_nodes;
  if (nodes.empty()) {
    for (uint32_t s = 0; s < jnvm::cluster::kNumSlots; ++s) {
      const std::string owner = cc->CachedOwner(static_cast<uint16_t>(s));
      if (!owner.empty() &&
          std::find(nodes.begin(), nodes.end(), owner) == nodes.end()) {
        nodes.push_back(owner);
      }
    }
  }
  std::map<std::string, std::unique_ptr<jnvm::server::Client>> direct;
  for (uint64_t k = tid; k < cfg.keys; k += cfg.threads) {
    const std::string key = KeyName(k);
    const auto routed = cc->Get(key);
    if (!routed.has_value()) {
      fail("LOST KEY " + key + (cc->last_error().empty()
                                    ? " (nil through the router)"
                                    : ": " + cc->last_error()));
      return;
    }
    const auto it = acked.find(k);
    if (it != acked.end() && *routed != it->second) {
      fail("LOST WRITE " + key + ": acked '" + it->second + "' but read '" +
           *routed + "'");
      return;
    }
    if (routed->rfind(std::to_string(k) + ":", 0) != 0) {
      fail("VERIFY " + key + ": foreign value '" + *routed + "'");
      return;
    }
    uint32_t serving = 0;
    for (const std::string& addr : nodes) {
      jnvm::server::RespReply r;
      if (!ProbeNode(direct, addr, key, &r, &err)) {
        fail(err);
        return;
      }
      if (r.type == jnvm::server::RespReply::Type::kBulk) {
        ++serving;
        if (r.str != *routed) {
          fail("DIVERGED KEY " + key + " at " + addr + ": '" + r.str +
               "' vs routed '" + *routed + "'");
          return;
        }
      } else if (r.type == jnvm::server::RespReply::Type::kError &&
                 (r.str.rfind("MOVED ", 0) == 0 ||
                  r.str.rfind("ASK ", 0) == 0)) {
        // Explicit redirect: the one acceptable answer from a non-owner.
      } else if (r.type == jnvm::server::RespReply::Type::kNil) {
        // A nil means the node RAN the read without owning the slot (an
        // owner holding the key answers the value; a non-owner must
        // redirect): the wrong-node silent success the sweep exists for.
        fail("SILENT WRONG-NODE SERVE " + key + " at " + addr +
             ": nil instead of a redirect");
        return;
      } else {
        fail("probe " + key + " at " + addr + ": unexpected reply '" + r.str +
             "'");
        return;
      }
    }
    if (serving != 1) {
      fail("EXACTLY-ONCE VIOLATION " + key + ": served by " +
           std::to_string(serving) + " node(s)");
      return;
    }
    res->cluster_keys++;
  }
}

void Worker(const Config& cfg, uint32_t tid, uint64_t deadline_ns,
            Barrier* barrier, std::atomic<bool>* failed, ThreadResult* res) {
  std::string err;
  auto client = jnvm::server::Client::Connect(cfg.host, cfg.port, &err);
  if (client == nullptr) {
    res->errors++;
    res->error_msg = "connect: " + err;
    failed->store(true);
    return;
  }
  std::vector<std::unique_ptr<jnvm::server::Client>> replicas;
  for (const Endpoint& ep : cfg.read_endpoints) {
    auto rc = jnvm::server::Client::Connect(ep.host, ep.port, &err);
    if (rc == nullptr) {
      res->errors++;
      res->error_msg = "connect replica " + ep.host + ":" +
                       std::to_string(ep.port) + ": " + err;
      failed->store(true);
      return;
    }
    replicas.push_back(std::move(rc));
  }

  // Preload this thread's slice of the key space (pipelined).
  if (cfg.preload) {
    const uint64_t lo = cfg.keys * tid / cfg.threads;
    const uint64_t hi = cfg.keys * (tid + 1) / cfg.threads;
    std::vector<jnvm::server::RespReply> replies;
    for (uint64_t i = lo; i < hi;) {
      const uint64_t stop = std::min<uint64_t>(i + 256, hi);
      for (; i < stop; ++i) {
        client->PipeSet(KeyName(i), ValueFor(i, 0, cfg.value_size));
      }
      if (!client->Sync(&replies)) {
        res->errors++;
        res->error_msg = "preload: " + client->last_error();
        failed->store(true);
        return;
      }
      for (const auto& r : replies) {
        if (r.type == jnvm::server::RespReply::Type::kError) {
          res->errors++;
          res->error_msg = "preload reply: " + r.str;
          failed->store(true);
          return;
        }
      }
    }
  }

  // With session reads every thread must see every preloaded key: hold all
  // threads here until the whole key space is on the primary, then seed the
  // per-shard session tokens with the primary's current sealed watermarks so
  // replica reads cover the preload too (not just this thread's own writes).
  std::vector<uint64_t> last_seq(cfg.shards, 0);
  std::vector<std::vector<uint64_t>> sent_token(
      cfg.read_endpoints.size(), std::vector<uint64_t>(cfg.shards, 0));
  if (barrier != nullptr) {
    barrier->Wait(*failed);
    if (failed->load(std::memory_order_acquire)) {
      return;
    }
  }
  if (cfg.read_from_replica && cfg.session) {
    for (uint32_t s = 0; s < cfg.shards; ++s) {
      const auto seq = client->LastSeq(s);
      if (!seq.has_value()) {
        res->errors++;
        res->error_msg = "LASTSEQ seed: " + client->last_error();
        failed->store(true);
        return;
      }
      last_seq[s] = *seq;
    }
  }

  jnvm::Xorshift rng(cfg.seed + tid);
  std::vector<jnvm::server::RespReply> replies;
  std::vector<bool> is_read;
  uint64_t version = 1;
  if (cfg.read_from_replica) {
    uint64_t round = 0;
    for (uint64_t done = 0; done < cfg.ops_per_thread;) {
      if (deadline_ns != 0 && jnvm::NowNs() >= deadline_ns) {
        break;
      }
      if (failed->load(std::memory_order_relaxed)) {
        return;
      }
      const uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(cfg.pipeline, cfg.ops_per_thread - done));
      const uint32_t ep =
          static_cast<uint32_t>(round % cfg.read_endpoints.size());
      if (!ReplicaRound(cfg, rng, n, client.get(), replicas, ep, last_seq,
                        sent_token, version, failed, res)) {
        return;
      }
      ++version;
      ++round;
      done += n;
    }
    return;
  }
  for (uint64_t done = 0; done < cfg.ops_per_thread;) {
    if (deadline_ns != 0 && jnvm::NowNs() >= deadline_ns) {
      break;
    }
    if (failed->load(std::memory_order_relaxed)) {
      return;
    }
    // One pipelined round of `pipeline` operations.
    const uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(cfg.pipeline, cfg.ops_per_thread - done));
    is_read.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t k = rng.NextBelow(cfg.keys);
      const bool read = cfg.readonly || rng.NextDouble() < cfg.read_ratio;
      is_read.push_back(read);
      if (read) {
        client->PipeGet(KeyName(k));
      } else if (cfg.field_updates) {
        client->PipeHset(KeyName(k), 0, ValueFor(k, version, cfg.value_size));
      } else {
        client->PipeSet(KeyName(k), ValueFor(k, version, cfg.value_size));
      }
    }
    ++version;
    const uint64_t t0 = jnvm::NowNs();
    if (!client->Sync(&replies)) {
      res->errors++;
      res->error_msg = "sync: " + client->last_error();
      failed->store(true);
      return;
    }
    const uint64_t per_op = (jnvm::NowNs() - t0) / n;
    for (uint32_t i = 0; i < replies.size(); ++i) {
      const auto& r = replies[i];
      if (IsWaitTimeout(r)) {
        res->wait_timeouts++;
        if (!cfg.allow_waittimeout) {
          res->errors++;
          res->error_msg = "reply: " + r.str;
          failed->store(true);
          return;
        }
        // Degraded but locally durable — record it as a completed write.
        res->write_lat.Record(per_op);
        res->writes++;
        continue;
      }
      if (r.type == jnvm::server::RespReply::Type::kError) {
        res->errors++;
        res->error_msg = "reply: " + r.str;
        failed->store(true);
        return;
      }
      if (is_read[i]) {
        res->read_lat.Record(per_op);
        res->reads++;
        if (r.type == jnvm::server::RespReply::Type::kNil) {
          res->misses++;
        }
      } else {
        res->write_lat.Record(per_op);
        res->writes++;
      }
    }
    done += n;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      if (std::strncmp(a, name, n) == 0 && a[n] == '=') {
        return a + n + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = val("--host")) != nullptr) {
      cfg.host = v;
    } else if ((v = val("--port")) != nullptr) {
      cfg.port = static_cast<uint16_t>(std::atoi(v));
    } else if ((v = val("--threads")) != nullptr) {
      cfg.threads = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--keys")) != nullptr) {
      cfg.keys = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--value-size")) != nullptr) {
      cfg.value_size = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--read-ratio")) != nullptr) {
      cfg.read_ratio = std::atof(v);
    } else if ((v = val("--pipeline")) != nullptr) {
      cfg.pipeline = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--ops")) != nullptr) {
      cfg.ops_per_thread = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--seconds")) != nullptr) {
      cfg.seconds = std::atof(v);
    } else if ((v = val("--seed")) != nullptr) {
      cfg.seed = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--read-from")) != nullptr) {
      if (std::strcmp(v, "replica") == 0) {
        cfg.read_from_replica = true;
      } else if (std::strcmp(v, "primary") != 0) {
        std::fprintf(stderr, "--read-from must be primary|replica\n");
        return 2;
      }
    } else if ((v = val("--read-endpoints")) != nullptr) {
      for (const char* p = v; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        const std::string tok =
            comma != nullptr ? std::string(p, comma) : std::string(p);
        const size_t colon = tok.rfind(':');
        if (colon == std::string::npos || colon == 0) {
          std::fprintf(stderr, "--read-endpoints: bad host:port '%s'\n",
                       tok.c_str());
          return 2;
        }
        Endpoint ep;
        ep.host = tok.substr(0, colon);
        ep.port = static_cast<uint16_t>(std::atoi(tok.c_str() + colon + 1));
        if (ep.port == 0) {
          std::fprintf(stderr, "--read-endpoints: bad port in '%s'\n",
                       tok.c_str());
          return 2;
        }
        cfg.read_endpoints.push_back(std::move(ep));
        p = comma != nullptr ? comma + 1 : p + tok.size();
      }
    } else if ((v = val("--consistency")) != nullptr) {
      if (std::strcmp(v, "session") == 0) {
        cfg.session = true;
      } else if (std::strcmp(v, "none") != 0) {
        std::fprintf(stderr, "--consistency must be none|session\n");
        return 2;
      }
    } else if ((v = val("--shards")) != nullptr) {
      cfg.shards = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--txn")) != nullptr) {
      cfg.txn_ops = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--cluster")) != nullptr) {
      cfg.cluster = true;
      for (const char* p = v; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        const std::string tok =
            comma != nullptr ? std::string(p, comma) : std::string(p);
        if (!tok.empty()) {
          cfg.cluster_seeds.push_back(tok);
        }
        p = comma != nullptr ? comma + 1 : p + tok.size();
      }
    } else if ((v = val("--cluster-nodes")) != nullptr) {
      for (const char* p = v; *p != '\0';) {
        const char* comma = std::strchr(p, ',');
        const std::string tok =
            comma != nullptr ? std::string(p, comma) : std::string(p);
        if (!tok.empty()) {
          cfg.cluster_nodes.push_back(tok);
        }
        p = comma != nullptr ? comma + 1 : p + tok.size();
      }
    } else if ((v = val("--cross-shard-pct")) != nullptr) {
      cfg.cross_shard_pct = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--ycsb")) != nullptr) {
      if (std::strcmp(v, "b") == 0) {
        cfg.read_ratio = 0.95;  // YCSB-B
      } else if (std::strcmp(v, "c") == 0) {
        cfg.read_ratio = 1.0;  // YCSB-C (still preloads; reads always hit)
      } else {
        std::fprintf(stderr, "--ycsb must be b|c\n");
        return 2;
      }
    } else if (std::strcmp(a, "--allow-stale") == 0) {
      cfg.allow_stale = true;
    } else if (std::strcmp(a, "--txn-verify") == 0) {
      cfg.txn_verify = true;
    } else if (std::strcmp(a, "--cluster") == 0) {
      cfg.cluster = true;
    } else if (std::strcmp(a, "--cluster-verify") == 0) {
      cfg.cluster_verify = true;
    } else if (std::strcmp(a, "--allow-disconnect") == 0) {
      cfg.allow_disconnect = true;
    } else if (std::strcmp(a, "--readonly") == 0) {
      cfg.readonly = true;
      cfg.preload = false;
    } else if (std::strcmp(a, "--expect-hits") == 0) {
      cfg.expect_hits = true;
    } else if (std::strcmp(a, "--allow-waittimeout") == 0) {
      cfg.allow_waittimeout = true;
    } else if (std::strcmp(a, "--field-updates") == 0) {
      cfg.field_updates = true;
    } else if (std::strcmp(a, "--no-preload") == 0) {
      cfg.preload = false;
    } else if (std::strcmp(a, "--stats") == 0) {
      cfg.dump_stats = true;
    } else if (std::strcmp(a, "--shutdown") == 0) {
      cfg.shutdown_after = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }
  // --cluster=H:P,... names its own endpoints; --port is only required when
  // the seed list would otherwise default to host:port.
  const bool needs_port = !cfg.cluster || cfg.cluster_seeds.empty();
  if ((cfg.port == 0 && needs_port) || cfg.threads == 0 || cfg.pipeline == 0 ||
      cfg.keys == 0) {
    std::fprintf(stderr,
                 "usage: jnvm_loadgen --port=N [--threads=N] [--keys=N] "
                 "[--value-size=N] [--read-ratio=F] [--field-updates] "
                 "[--pipeline=N] [--ops=N] [--seconds=F] [--stats] "
                 "[--shutdown] [--read-from=replica --read-endpoints=H:P,...] "
                 "[--consistency=session] [--shards=N] [--allow-stale]\n");
    return 2;
  }
  if (cfg.read_from_replica && cfg.read_endpoints.empty()) {
    std::fprintf(stderr,
                 "jnvm_loadgen: --read-from=replica needs --read-endpoints\n");
    return 2;
  }
  if (cfg.session && !cfg.read_from_replica) {
    std::fprintf(stderr,
                 "jnvm_loadgen: --consistency=session needs "
                 "--read-from=replica (primary reads are trivially fresh)\n");
    return 2;
  }
  if (cfg.shards == 0) {
    std::fprintf(stderr, "jnvm_loadgen: --shards must be > 0\n");
    return 2;
  }
  if (cfg.cross_shard_pct > 100) {
    std::fprintf(stderr, "jnvm_loadgen: --cross-shard-pct must be 0..100\n");
    return 2;
  }
  if (cfg.txn_verify && cfg.txn_ops == 0) {
    std::fprintf(stderr, "jnvm_loadgen: --txn-verify needs --txn=K\n");
    return 2;
  }
  if (cfg.txn_ops > 0 && cfg.read_from_replica) {
    std::fprintf(stderr, "jnvm_loadgen: --txn targets the primary endpoint\n");
    return 2;
  }
  if (cfg.cluster_verify && !cfg.cluster) {
    std::fprintf(stderr, "jnvm_loadgen: --cluster-verify needs --cluster\n");
    return 2;
  }
  if (cfg.cluster &&
      (cfg.read_from_replica || cfg.txn_ops > 0 || cfg.field_updates)) {
    std::fprintf(stderr,
                 "jnvm_loadgen: --cluster is plain SET/GET only (no "
                 "--read-from=replica, --txn or --field-updates)\n");
    return 2;
  }
  if (cfg.cluster && cfg.cluster_seeds.empty()) {
    cfg.cluster_seeds.push_back(cfg.host + ":" + std::to_string(cfg.port));
  }

  const uint64_t deadline_ns =
      cfg.seconds > 0 ? jnvm::NowNs() + static_cast<uint64_t>(cfg.seconds * 1e9)
                      : 0;
  std::vector<ThreadResult> results(cfg.threads);
  std::atomic<bool> failed{false};
  Barrier barrier;
  barrier.total = cfg.threads;
  // Only replica-routed runs need the preload/read fence; plain runs keep the
  // historical free-running start.
  Barrier* barrier_ptr =
      (cfg.preload && cfg.read_from_replica) ? &barrier : nullptr;
  const uint64_t t0 = jnvm::NowNs();
  {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < cfg.threads; ++t) {
      if (cfg.cluster) {
        threads.emplace_back(ClusterWorker, std::cref(cfg), t, deadline_ns,
                             &failed, &results[t]);
      } else if (cfg.txn_ops > 0) {
        threads.emplace_back(TxnWorker, std::cref(cfg), t, deadline_ns,
                             &failed, &results[t]);
      } else {
        threads.emplace_back(Worker, std::cref(cfg), t, deadline_ns,
                             barrier_ptr, &failed, &results[t]);
      }
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  const double elapsed = static_cast<double>(jnvm::NowNs() - t0) / 1e9;

  jnvm::Histogram reads, writes;
  uint64_t nreads = 0, nwrites = 0, misses = 0, errors = 0, waittimeouts = 0;
  uint64_t stales = 0, txn_commits = 0, txn_aborts = 0, txn_groups = 0;
  uint64_t moved = 0, asks = 0, tryagains = 0, refreshes = 0, cl_keys = 0;
  for (const ThreadResult& r : results) {
    reads.Merge(r.read_lat);
    writes.Merge(r.write_lat);
    nreads += r.reads;
    nwrites += r.writes;
    misses += r.misses;
    errors += r.errors;
    waittimeouts += r.wait_timeouts;
    stales += r.stale_reads;
    txn_commits += r.txn_commits;
    txn_aborts += r.txn_aborts;
    txn_groups += r.txn_groups;
    moved += r.moved_redirects;
    asks += r.ask_redirects;
    tryagains += r.tryagain_retries;
    refreshes += r.slot_refreshes;
    cl_keys += r.cluster_keys;
    if (!r.error_msg.empty()) {
      std::fprintf(stderr, "jnvm_loadgen: %s\n", r.error_msg.c_str());
    }
  }
  const uint64_t total = nreads + nwrites;
  std::printf("jnvm_loadgen: %llu ops in %.2fs = %.0f ops/s "
              "(threads=%u pipeline=%u read_ratio=%.2f value=%uB %s "
              "seed=%llu)\n",
              static_cast<unsigned long long>(total), elapsed,
              elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0,
              cfg.threads, cfg.pipeline, cfg.readonly ? 1.0 : cfg.read_ratio,
              cfg.value_size,
              cfg.readonly        ? "readonly"
              : cfg.field_updates ? "hset"
                                  : "set",
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  reads : %llu (misses=%llu%s) %s\n",
              static_cast<unsigned long long>(nreads),
              static_cast<unsigned long long>(misses),
              cfg.read_from_replica
                  ? (" stale=" + std::to_string(stales) +
                     " endpoints=" + std::to_string(cfg.read_endpoints.size()) +
                     (cfg.session ? " session" : ""))
                        .c_str()
                  : "",
              reads.Summary().c_str());
  std::printf("  writes: %llu (waittimeouts=%llu) %s\n",
              static_cast<unsigned long long>(nwrites),
              static_cast<unsigned long long>(waittimeouts),
              writes.Summary().c_str());
  if (cfg.cluster) {
    std::printf("  cluster: moved=%llu ask=%llu tryagain=%llu refreshes=%llu%s\n",
                static_cast<unsigned long long>(moved),
                static_cast<unsigned long long>(asks),
                static_cast<unsigned long long>(tryagains),
                static_cast<unsigned long long>(refreshes),
                cfg.cluster_verify
                    ? (" verified_keys=" + std::to_string(cl_keys) +
                       (errors == 0 ? " exactly_once=ok" : " EXACTLY-ONCE-FAILED"))
                          .c_str()
                    : "");
  }
  if (cfg.txn_ops > 0) {
    std::printf("  txns  : committed=%llu aborted=%llu ops_per_txn=%u "
                "cross_shard_pct=%u%s\n",
                static_cast<unsigned long long>(txn_commits),
                static_cast<unsigned long long>(txn_aborts), cfg.txn_ops,
                cfg.cross_shard_pct,
                cfg.txn_verify
                    ? (" verified_groups=" + std::to_string(txn_groups) +
                       (errors == 0 ? " atomicity=ok" : " ATOMICITY-FAILED"))
                          .c_str()
                    : "");
  }

  int rc = (failed.load() || errors != 0) ? 1 : 0;
  if (cfg.expect_hits && misses != 0) {
    std::fprintf(stderr,
                 "jnvm_loadgen: %llu miss(es) with --expect-hits\n",
                 static_cast<unsigned long long>(misses));
    rc = 1;
  }
  std::string err;
  auto ctl = jnvm::server::Client::Connect(cfg.host, cfg.port, &err);
  if (ctl != nullptr) {
    if (cfg.dump_stats) {
      if (const auto stats = ctl->Stats()) {
        std::printf("---- server stats ----\n%s", stats->c_str());
      }
    }
    if (cfg.shutdown_after && !ctl->Shutdown()) {
      std::fprintf(stderr, "jnvm_loadgen: shutdown: %s\n",
                   ctl->last_error().c_str());
      rc = 1;
    }
  } else if (cfg.dump_stats || cfg.shutdown_after) {
    std::fprintf(stderr, "jnvm_loadgen: control connection: %s\n", err.c_str());
    rc = 1;
  }
  return rc;
}
