// jnvm_server — the standalone J-NVM network server (DESIGN.md §7).
//
//   jnvm_server [--port=N] [--host=A] [--shards=N] [--batch=N]
//               [--backend=jpdt|jpfa] [--device-mb=N] [--image-base=PATH]
//               [--queue=N] [--loops=N] [--poller=epoll|poll|uring] [--poll]
//               [--no-reuseport] [--optane] [--fence-ns=N]
//               [--replica-of=HOST:PORT] [--no-repl-log]
//               [--repl-segment=BYTES] [--repl-retention=SEGS]
//               [--wait-acks=K] [--wait-timeout-ms=N] [--apply-batch=N]
//               [--read-stale-timeout-ms=N] [--read-park-max=N]
//               [--ckpt-interval=MS]
//               [--cluster] [--cluster-self=N] [--cluster-announce=H:P]
//               [--cluster-dax=PATH | --cluster-image=PATH] [--dax-base=PATH]
//
// --loops=N runs N event-loop threads, each with its own SO_REUSEPORT
// listener (or an accept-and-hand-off fallback; --no-reuseport forces it);
// connections pin to their accepting loop. --poller picks the readiness
// backend: epoll (default), poll, or uring (io_uring with batched SENDMSG
// flushing; falls back to epoll at runtime when the kernel lacks io_uring —
// STATS `poller=` shows the backend actually in use). --poll is the legacy
// spelling of --poller=poll.
// With --image-base, shard images are saved on SHUTDOWN and recovered on
// the next start — kill the server with SHUTDOWN (or SIGINT/SIGTERM),
// restart it with the same --image-base, and the data is back.
// With --replica-of the server runs every shard as a read-only follower
// pulling the primary's replication stream (DESIGN.md §8); PROMOTE flips
// it into a primary. --shards must match the primary's.
// With --wait-acks=K each write batch's replies are withheld until K
// replication subscribers have acknowledged the sealed log sequence; after
// --wait-timeout-ms the write replies degrade to -WAITTIMEOUT (the data is
// still locally durable). K=0 (the default) is asynchronous replication.
// --apply-batch decouples a replica's apply-side group-commit size from the
// primary's sealed batch size: up to N shipped records (each one sealed
// primary batch) share one local durability point. 0 follows --batch.
// Replicas serve reads under the session contract (MINSEQ/LASTSEQ): a read
// whose session token is ahead of the shard's applied watermark parks for
// up to --read-stale-timeout-ms before failing -STALE; --read-park-max
// bounds the parked set. A replica also serves REPLSYNC/REPLSNAP from its
// own (byte-identical) log, so further replicas can chain off it
// (--replica-of pointing at a replica builds a tree).
// --ckpt-interval=MS runs a fuzzy checkpoint pass (DESIGN.md §11) every MS
// milliseconds: walk + finalize on every shard, then the replication log
// reclaims sealed segments below the durable [ckpt_begin_seq]. 0 (default)
// = checkpoints run only when the CKPT admin verb asks for one.
// With --cluster the node joins the hash-slot plane (DESIGN.md §10):
// single-key commands route through the persisted 16384-slot table
// (-MOVED / -ASK / -TRYAGAIN / -CLUSTERDOWN for slots not plainly owned),
// and the CLUSTER / ASKING / MIG* command families appear. --cluster-self
// is this node's index in the node table; --cluster-announce overrides the
// client-visible host:port (defaults to the bound address). The slot table
// persists in --cluster-dax (mmap'd file, survives kill -9) or
// --cluster-image (saved on clean shutdown); neither = volatile (tests).
// --dax-base does the same for the shard heaps themselves: each shard maps
// "<base>.shard<i>.pmem" MAP_SHARED, so a kill -9'd node recovers its data
// *and* its slot table on restart — the cluster CI scenario.
// Exit status is 0 only when every shard quiesced with a clean integrity
// audit (I1–I7).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/server/server.h"

namespace {

jnvm::server::Server* g_server = nullptr;

void OnSignal(int) {
  if (g_server != nullptr) {
    g_server->RequestShutdown();
  }
}

bool FlagValue(const char* arg, const char* name, const char** out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  jnvm::server::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--port", &v)) {
      opts.port = static_cast<uint16_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--host", &v)) {
      opts.host = v;
    } else if (FlagValue(argv[i], "--shards", &v)) {
      opts.nshards = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--batch", &v)) {
      opts.shard.batch = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--backend", &v)) {
      opts.shard.backend = v;
    } else if (FlagValue(argv[i], "--device-mb", &v)) {
      opts.shard.device_bytes = static_cast<uint64_t>(std::atoll(v)) << 20;
    } else if (FlagValue(argv[i], "--image-base", &v)) {
      opts.shard.image_base = v;
    } else if (FlagValue(argv[i], "--queue", &v)) {
      opts.shard.queue_capacity = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--replica-of", &v)) {
      opts.replica_of = v;
    } else if (std::strcmp(argv[i], "--no-repl-log") == 0) {
      opts.shard.repl_log = false;
    } else if (FlagValue(argv[i], "--repl-segment", &v)) {
      opts.shard.repl_segment_bytes = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--repl-retention", &v)) {
      opts.shard.repl_max_segments = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--wait-acks", &v)) {
      opts.shard.wait_acks = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--wait-timeout-ms", &v)) {
      opts.shard.wait_timeout_ms = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--apply-batch", &v)) {
      opts.shard.apply_batch = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--read-stale-timeout-ms", &v)) {
      opts.shard.read_stale_timeout_ms = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--read-park-max", &v)) {
      opts.shard.read_park_max = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--ckpt-interval", &v)) {
      opts.ckpt_interval_ms = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      opts.cluster = true;
    } else if (FlagValue(argv[i], "--cluster-self", &v)) {
      opts.cluster_meta.self = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--cluster-announce", &v)) {
      opts.cluster_meta.announce = v;
    } else if (FlagValue(argv[i], "--cluster-dax", &v)) {
      opts.cluster_meta.dax_path = v;
    } else if (FlagValue(argv[i], "--cluster-image", &v)) {
      opts.cluster_meta.image_path = v;
    } else if (FlagValue(argv[i], "--dax-base", &v)) {
      opts.shard.dax_base = v;
    } else if (FlagValue(argv[i], "--loops", &v)) {
      opts.loops = static_cast<uint32_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--poller", &v)) {
      opts.poller = v;
    } else if (std::strcmp(argv[i], "--no-reuseport") == 0) {
      opts.reuseport = false;
    } else if (std::strcmp(argv[i], "--poll") == 0) {
      opts.force_poll = true;
    } else if (std::strcmp(argv[i], "--optane") == 0) {
      opts.shard.optane_latency = true;
    } else if (FlagValue(argv[i], "--fence-ns", &v)) {
      opts.shard.fence_ns = static_cast<uint32_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::string error;
  auto server = jnvm::server::Server::Start(opts, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "jnvm_server: %s\n", error.c_str());
    return 1;
  }
  g_server = server.get();
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("jnvm_server: listening on %s:%u (%u shard(s), backend=%s, "
              "batch=%u, loops=%u, poller=%s%s%s)%s\n",
              opts.host.c_str(), server->port(), opts.nshards,
              opts.shard.backend.c_str(), opts.shard.batch,
              opts.loops == 0 ? 1 : opts.loops, server->poller_name(),
              opts.replica_of.empty() ? "" : ", replica of ",
              opts.replica_of.c_str(),
              server->AnyShardRecovered() ? " [recovered]" : "");
  if (opts.cluster) {
    std::printf("jnvm_server: cluster node %u, epoch %llu, %llu slot(s) "
                "owned\n",
                server->cluster_state()->self(),
                static_cast<unsigned long long>(
                    server->cluster_state()->epoch()),
                static_cast<unsigned long long>(
                    server->cluster_state()->slots_owned()));
  }
  std::fflush(stdout);

  server->Wait();
  g_server = nullptr;

  const auto& report = server->shutdown_report();
  std::printf("jnvm_server: shutdown %s\n%s", report.ok ? "clean" : "UNCLEAN",
              report.Summary().c_str());
  return report.ok ? 0 : 1;
}
