// jnvm_crashmc — the crash-consistency model-checker CLI.
//
// Sweeps every crash point of a scripted workload (or a stride over them)
// across several cache-line eviction seeds, runs recovery at each point, and
// judges the recovered heap against the workload's durability oracle. See
// src/crashcheck/checker.h for the model.
//
//   jnvm_crashmc                          # full sweep, all workloads
//   jnvm_crashmc --workload=map-hash      # one workload
//   jnvm_crashmc --stride=4 --seeds=1,7   # coarser sweep
//   jnvm_crashmc --max-points=100         # bounded sweep (CI)
//   jnvm_crashmc --workload=pfa --repro=812:7   # re-run one violation
//   jnvm_crashmc --faulty                 # planted-bug demo (must report)
//
// Exit status: 0 when every sweep is violation-free (for --faulty: when the
// planted bug IS caught), 1 on violations, 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/crashcheck/checker.h"

namespace {

using jnvm::crashcheck::CheckerOptions;
using jnvm::crashcheck::CrashChecker;
using jnvm::crashcheck::FormatViolation;
using jnvm::crashcheck::MakeFaultyWorkload;
using jnvm::crashcheck::MakeWorkload;
using jnvm::crashcheck::SweepResult;
using jnvm::crashcheck::Violation;
using jnvm::crashcheck::WorkloadKinds;

struct Args {
  std::string workload = "all";
  uint64_t ops = 40;
  uint64_t script_seed = 42;
  uint64_t stride = 1;
  uint64_t max_points = 0;
  std::vector<uint64_t> seeds = {1, 7, 1337};
  bool have_repro = false;
  uint64_t repro_event = 0;
  uint64_t repro_seed = 0;
  bool faulty = false;
  bool list = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: jnvm_crashmc [--workload=all|KIND] [--ops=N] "
               "[--script-seed=S]\n"
               "                    [--stride=K] [--max-points=N] "
               "[--seeds=a,b,c]\n"
               "                    [--repro=EVENT:SEED] [--faulty] [--list]\n");
}

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    const char* v = nullptr;
    if ((v = val("--workload=")) != nullptr) {
      a->workload = v;
    } else if ((v = val("--ops=")) != nullptr) {
      if (!ParseU64(v, &a->ops) || a->ops == 0) return false;
    } else if ((v = val("--script-seed=")) != nullptr) {
      if (!ParseU64(v, &a->script_seed)) return false;
    } else if ((v = val("--stride=")) != nullptr) {
      if (!ParseU64(v, &a->stride) || a->stride == 0) return false;
    } else if ((v = val("--max-points=")) != nullptr) {
      if (!ParseU64(v, &a->max_points)) return false;
    } else if ((v = val("--seeds=")) != nullptr) {
      a->seeds.clear();
      std::string list = v;
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        uint64_t s;
        if (!ParseU64(tok.c_str(), &s)) return false;
        a->seeds.push_back(s);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (a->seeds.empty()) return false;
    } else if ((v = val("--repro=")) != nullptr) {
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) return false;
      if (!ParseU64(std::string(v, colon - v).c_str(), &a->repro_event)) return false;
      if (!ParseU64(colon + 1, &a->repro_seed)) return false;
      a->have_repro = true;
    } else if (arg == "--faulty") {
      a->faulty = true;
    } else if (arg == "--list") {
      a->list = true;
    } else {
      return false;
    }
  }
  return true;
}

std::unique_ptr<jnvm::crashcheck::Workload> Make(const Args& a,
                                                 const std::string& kind) {
  if (a.faulty) {
    return MakeFaultyWorkload(a.script_seed, a.ops);
  }
  return MakeWorkload(kind, a.script_seed, a.ops);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!ParseArgs(argc, argv, &a)) {
    Usage();
    return 2;
  }
  if (a.list) {
    for (const std::string& k : WorkloadKinds()) {
      std::printf("%s\n", k.c_str());
    }
    return 0;
  }

  CheckerOptions opts;
  opts.stride = a.stride;
  opts.max_points = a.max_points;
  opts.eviction_seeds = a.seeds;

  // Violation reports print `--workload=faulty-string`; accept it as an
  // alias for --faulty so the repro line works verbatim.
  if (a.workload == "faulty-string") {
    a.faulty = true;
  }
  std::vector<std::string> kinds;
  if (a.faulty) {
    kinds.push_back("faulty-string");
  } else if (a.workload == "all") {
    kinds = WorkloadKinds();
  } else {
    bool known = false;
    for (const std::string& k : WorkloadKinds()) {
      known = known || k == a.workload;
    }
    if (!known) {
      std::fprintf(stderr, "unknown workload '%s'; --list names the kinds\n",
                   a.workload.c_str());
      return 2;
    }
    kinds.push_back(a.workload);
  }

  if (a.have_repro) {
    if (kinds.size() != 1) {
      std::fprintf(stderr, "--repro needs --workload=KIND (or --faulty)\n");
      return 2;
    }
    CrashChecker checker(Make(a, kinds[0]), opts);
    const auto& rec = checker.recording();
    if (a.repro_event <= rec.setup_events || a.repro_event > rec.op_end.back()) {
      std::fprintf(stderr,
                   "crash event %" PRIu64 " outside the recorded op range "
                   "(%" PRIu64 ", %" PRIu64 "] — same --ops/--script-seed as "
                   "the sweep that reported it?\n",
                   a.repro_event, rec.setup_events, rec.op_end.back());
      return 2;
    }
    const auto violations = checker.CheckPoint(a.repro_event, a.repro_seed);
    for (const Violation& v : violations) {
      std::printf("%s\n", FormatViolation(v).c_str());
    }
    std::printf("repro %s crash_event=%" PRIu64 " eviction_seed=%" PRIu64
                ": %zu violation(s)\n",
                kinds[0].c_str(), a.repro_event, a.repro_seed, violations.size());
    return violations.empty() ? 0 : 1;
  }

  uint64_t total_points = 0;
  uint64_t total_runs = 0;
  uint64_t total_violations = 0;
  for (const std::string& kind : kinds) {
    CrashChecker checker(Make(a, kind), opts);
    const SweepResult res = checker.Sweep();
    std::printf("%s\n", res.Summary().c_str());
    std::fflush(stdout);
    total_points += res.points_explored;
    total_runs += res.runs;
    total_violations += res.violation_count;
  }
  std::printf("TOTAL: %" PRIu64 " crash points, %" PRIu64 " runs, %" PRIu64
              " violations\n",
              total_points, total_runs, total_violations);

  if (a.faulty) {
    // The planted bug must be caught; a silent pass means the oracle is blind.
    if (total_violations == 0) {
      std::fprintf(stderr, "faulty workload produced no violations — the "
                           "checker failed to detect the planted bug\n");
      return 1;
    }
    std::printf("planted bug detected, as expected\n");
    return 0;
  }
  return total_violations == 0 ? 0 : 1;
}
