// jnvm_inspect — offline heap-image inspector.
//
// Opens a saved device image (PmemDevice::SaveTo) read-only-ish and prints:
// the superblock, the class table, a block-occupancy census (Table 2
// states), per-class object counts and footprints, and an integrity audit
// of the reachable graph. The ops companion to the library — what you point
// at a region file when something looks wrong.
//
// Usage: jnvm_inspect <image-file>
//
// Built-in classes (J-PDT, store, bank) are pre-registered; images holding
// application-defined classes need those classes linked into the inspector
// (the classpath requirement of §3.1 resurrection).
#include <cinttypes>
#include <cstdio>
#include <map>

#include "src/core/integrity.h"
#include "src/pdt/register_all.h"
#include "src/store/jpfa_map.h"
#include "src/store/precord.h"
#include "src/tpcb/bank.h"

using namespace jnvm;

namespace {

void PrintCensus(heap::Heap& h) {
  uint64_t valid_masters = 0;
  uint64_t invalid_masters = 0;
  uint64_t slave_or_free = 0;
  std::map<uint16_t, uint64_t> per_class;
  const nvm::Offset end = h.bump();
  for (nvm::Offset b = h.first_block(); b < end; b += h.block_size()) {
    const heap::BlockHeader hdr = h.ReadHeader(b);
    if (hdr.IsMaster()) {
      (hdr.valid ? valid_masters : invalid_masters) += 1;
      if (hdr.valid) {
        per_class[hdr.id] += 1;
      }
    } else {
      slave_or_free += 1;
    }
  }
  std::printf("block census (Table 2 states), %" PRIu64 " allocated blocks:\n",
              h.NumAllocatedBlocks());
  std::printf("  valid masters   : %" PRIu64 "\n", valid_masters);
  std::printf("  invalid masters : %" PRIu64 "  (reclaimable)\n", invalid_masters);
  std::printf("  slave or free   : %" PRIu64 "\n", slave_or_free);
  std::printf("\nvalid masters per class:\n");
  for (const auto& [id, count] : per_class) {
    const std::string name = h.ClassName(id);
    std::printf("  %5u  %-28s %10" PRIu64 "\n", id,
                name.empty() ? "<unknown>" : name.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: jnvm_inspect <image-file>\n");
    return 1;
  }
  // Register every built-in persistent class before recovery resurrects
  // anything (the classpath requirement of §3.1).
  pdt::RegisterStandardClasses();
  store::PRecord::Class();
  store::JpfaEntry::Class();
  store::JpfaHashMap::Class();
  tpcb::PAccount::Class();

  auto dev = nvm::PmemDevice::LoadFrom(argv[1]);
  if (dev == nullptr) {
    std::fprintf(stderr, "jnvm_inspect: %s is not a device image\n", argv[1]);
    return 1;
  }
  std::printf("image: %s (%zu bytes)\n\n", argv[1], dev->size());

  // Open with recovery (an image may have been saved mid-flight); the
  // runtime prints nothing on success.
  auto rt = core::JnvmRuntime::Open(dev.get());
  heap::Heap& h = rt->heap();

  std::printf("superblock:\n");
  std::printf("  block size    : %u B (payload %u B)\n", h.block_size(),
              h.payload_per_block());
  std::printf("  first block   : 0x%" PRIx64 "\n", h.first_block());
  std::printf("  bump pointer  : 0x%" PRIx64 "\n", h.bump());
  std::printf("  root master   : 0x%" PRIx64 "\n", h.root_master());
  std::printf("  clean shutdown: %s\n\n", h.was_clean_shutdown() ? "yes" : "NO");

  const auto usage = h.GetUsage();
  std::printf("usage: %" PRIu64 "/%" PRIu64 " blocks in use (%.1f%%), %" PRIu64
              " recycled in the free queue\n\n",
              usage.in_use_blocks, usage.capacity_blocks, usage.utilization * 100,
              usage.free_queue_blocks);

  PrintCensus(h);

  std::printf("\nrecovery report (from opening this image):\n");
  const auto& rep = rt->recovery_report();
  std::printf("  redo logs: %u replayed, %u aborted; %" PRIu64
              " objects traversed, %" PRIu64 " refs nullified, %" PRIu64
              " blocks freed\n",
              rep.replay.replayed_logs, rep.replay.aborted_logs,
              rep.traversed_objects, rep.nullified_refs, rep.sweep.freed_blocks);

  std::printf("\nintegrity audit: ");
  const auto report = core::VerifyHeapIntegrity(*rt);
  std::printf("%s\n", report.Summary().c_str());
  std::printf("\nroot map bindings (%zu):\n", rt->root().Size());
  for (const std::string& key : rt->root().Keys()) {
    std::printf("  %s\n", key.c_str());
  }
  rt->Abandon();  // inspection must not alter the on-disk image
  return report.ok() ? 0 : 2;
}
