// jnvm_inspect — offline heap-image inspector.
//
// Opens a saved device image (PmemDevice::SaveTo) read-only-ish and prints:
// the superblock, the class table, a block-occupancy census (Table 2
// states), per-class object counts and footprints, and an integrity audit
// of the reachable graph. The ops companion to the library — what you point
// at a region file when something looks wrong.
//
// Usage: jnvm_inspect [--summary] <image-file>
//
// --summary prints a compact one-screen digest (occupancy, root bindings,
// FA-log slot states, audit verdict) instead of the full census — the mode
// for scripting and for a quick glance at a fleet of shard images.
//
// Exit status: 0 clean, 1 usage/load error, 2 when the I1–I7 integrity
// audit fails — CI gates on this. The image is offline (the heap is
// quiescent by construction), so the audit always includes I7 (FA logs).
//
// Built-in classes (J-PDT, store, bank) are pre-registered; images holding
// application-defined classes need those classes linked into the inspector
// (the classpath requirement of §3.1 resurrection).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "src/ckpt/ckpt_meta.h"
#include "src/cluster/meta.h"
#include "src/core/integrity.h"
#include "src/pdt/register_all.h"
#include "src/pfa/fa_log.h"
#include "src/repl/repl_log.h"
#include "src/store/jpfa_map.h"
#include "src/store/precord.h"
#include "src/tpcb/bank.h"

using namespace jnvm;

namespace {

void PrintCensus(heap::Heap& h) {
  uint64_t valid_masters = 0;
  uint64_t invalid_masters = 0;
  uint64_t slave_or_free = 0;
  std::map<uint16_t, uint64_t> per_class;
  const nvm::Offset end = h.bump();
  for (nvm::Offset b = h.first_block(); b < end; b += h.block_size()) {
    const heap::BlockHeader hdr = h.ReadHeader(b);
    if (hdr.IsMaster()) {
      (hdr.valid ? valid_masters : invalid_masters) += 1;
      if (hdr.valid) {
        per_class[hdr.id] += 1;
      }
    } else {
      slave_or_free += 1;
    }
  }
  std::printf("block census (Table 2 states), %" PRIu64 " allocated blocks:\n",
              h.NumAllocatedBlocks());
  std::printf("  valid masters   : %" PRIu64 "\n", valid_masters);
  std::printf("  invalid masters : %" PRIu64 "  (reclaimable)\n", invalid_masters);
  std::printf("  slave or free   : %" PRIu64 "\n", slave_or_free);
  std::printf("\nvalid masters per class:\n");
  for (const auto& [id, count] : per_class) {
    const std::string name = h.ClassName(id);
    std::printf("  %5u  %-28s %10" PRIu64 "\n", id,
                name.empty() ? "<unknown>" : name.c_str(), count);
  }
}

// When the image holds a cluster meta root (a cluster node's slot table),
// print the persisted ownership runs, epoch and migration record — the
// ground truth a restarted node will route by (DESIGN.md §10).
void PrintClusterMeta(core::JnvmRuntime& rt, bool summary) {
  if (!rt.root().Exists(cluster::ClusterState::RootName())) {
    return;
  }
  auto meta = rt.root().GetAs<cluster::ClusterMetaRoot>(
      cluster::ClusterState::RootName());
  if (meta == nullptr) {
    std::printf("  cluster   : root binding present but unresolvable\n");
    return;
  }
  const char* pad = summary ? "  " : "";
  std::printf("%scluster   : epoch=%" PRIu64 " self=%u nodes=%u\n", pad,
              meta->Epoch(), meta->Self(), meta->NodeCount());
  for (uint32_t i = 0; i < meta->NodeCount(); ++i) {
    const std::string addr = meta->NodeAddr(i);
    std::printf("%s    node%u : %s\n", pad, i,
                addr.empty() ? "?" : addr.c_str());
  }
  // Slot table as contiguous runs (16384 individual lines help nobody).
  std::vector<uint16_t> owners(cluster::kNumSlots);
  meta->ReadOwners(owners.data());
  uint16_t run_owner = owners[0];
  uint32_t run_lo = 0;
  const auto flush = [&](uint32_t end_exclusive) {
    if (run_owner == cluster::kNoOwner) {
      std::printf("%s    slots %5u-%-5u unassigned\n", pad, run_lo,
                  end_exclusive - 1);
    } else {
      std::printf("%s    slots %5u-%-5u -> node %u\n", pad, run_lo,
                  end_exclusive - 1, run_owner);
    }
  };
  for (uint32_t s = 1; s < cluster::kNumSlots; ++s) {
    if (owners[s] != run_owner) {
      flush(s);
      run_owner = owners[s];
      run_lo = s;
    }
  }
  flush(cluster::kNumSlots);
  static const char* kStates[] = {"none", "migrating", "importing", "handoff"};
  const uint32_t st = meta->MigState();
  if (st != 0 && st < 4) {
    std::printf("%s    migration: %s lo=%u hi=%u peer=%u\n", pad, kStates[st],
                meta->MigLo(), meta->MigHi(), meta->MigPeer());
  }
}

// Replication-log occupancy + checkpoint watermark (DESIGN.md §11): how
// many sealed segments the shard retains, the byte footprint, and the
// truncation watermark (start_seq — everything below was reclaimed by a
// checkpoint or ring-full eviction). Printed only when the image holds the
// shard's log root binding.
void PrintReplLog(core::JnvmRuntime& rt) {
  if (rt.root().Exists("server.repl")) {
    // Binding exists → OpenOrCreate binds (never creates). The recovery
    // reconcile it runs is what the server itself would do; the inspection
    // device is never written back (rt.Abandon()).
    auto log = repl::ReplLog::OpenOrCreate(&rt, "server.repl",
                                           repl::ReplLogOptions{});
    std::printf("  repl log  : %u sealed segment(s), %" PRIu64
                " bytes, seqs [%" PRIu64 ", %" PRIu64
                "), truncated below %" PRIu64 "%s\n",
                log->segments(), log->bytes(), log->start_seq(),
                log->next_seq(), log->start_seq(),
                log->needs_snapshot() ? " [needs_snapshot]" : "");
  }
  if (rt.root().Exists("server.ckpt")) {
    auto meta = rt.root().GetAs<ckpt::CkptMeta>("server.ckpt");
    if (meta != nullptr) {
      std::printf("  checkpoint: count=%" PRIu64 " begin=%" PRIu64
                  " end=%" PRIu64 " walked_keys=%" PRIu64
                  " walked_bytes=%" PRIu64 "\n",
                  meta->Count(), meta->BeginSeq(), meta->EndSeq(),
                  meta->WalkedKeys(), meta->WalkedBytes());
    }
  }
}

// One image, one paragraph: enough to see at a glance whether a shard image
// is healthy, how full it is, and whether any FA log was left mid-flight.
int PrintSummary(const char* path, nvm::PmemDevice* dev,
                 core::JnvmRuntime* rt) {
  heap::Heap& h = rt->heap();
  const auto usage = h.GetUsage();
  const pfa::LogAudit logs = pfa::AuditLogs(&h);
  const auto report =
      core::VerifyHeapIntegrity(*rt, core::IntegrityOptions{.audit_fa_logs = true});
  const auto& rep = rt->recovery_report();

  std::printf("%s: %zu bytes, clean_shutdown=%s\n", path, dev->size(),
              h.was_clean_shutdown() ? "yes" : "no");
  std::printf("  occupancy : %" PRIu64 "/%" PRIu64 " blocks (%.1f%%), %" PRIu64
              " in free queue\n",
              usage.in_use_blocks, usage.capacity_blocks,
              usage.utilization * 100, usage.free_queue_blocks);
  std::printf("  root map  : %zu binding(s)", rt->root().Size());
  for (const std::string& key : rt->root().Keys()) {
    std::printf(" %s", key.c_str());
  }
  std::printf("\n");
  std::printf("  fa logs   : %u active slot(s), %u committed, %" PRIu64
              " pending entrie(s)\n",
              logs.active_slots, logs.committed_slots, logs.pending_entries);
  std::printf("  recovery  : %u log(s) replayed, %u aborted, %" PRIu64
              " block(s) swept\n",
              rep.replay.replayed_logs, rep.replay.aborted_logs,
              rep.sweep.freed_blocks);
  PrintReplLog(*rt);
  PrintClusterMeta(*rt, /*summary=*/true);
  std::printf("  integrity : %s\n", report.Summary().c_str());
  rt->Abandon();
  return report.ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: jnvm_inspect [--summary] <image-file>\n");
    return 1;
  }
  // Register every built-in persistent class before recovery resurrects
  // anything (the classpath requirement of §3.1).
  pdt::RegisterStandardClasses();
  store::PRecord::Class();
  store::JpfaEntry::Class();
  store::JpfaHashMap::Class();
  tpcb::PAccount::Class();
  repl::ReplLogRoot::Class();
  repl::ReplLogSegment::Class();
  ckpt::CkptMeta::Class();
  cluster::ClusterMetaRoot::Class();

  auto dev = nvm::PmemDevice::LoadFrom(path);
  if (dev == nullptr) {
    // Not a SaveTo image — try a raw dax region (cluster fleet mode maps
    // files headerless). The bytes are copied into a volatile device so the
    // inspection, including its recovery pass, never touches the file.
    std::FILE* f = std::fopen(path, "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      const long sz = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      if (sz > 0) {
        nvm::DeviceOptions dopts;
        dopts.size_bytes = static_cast<size_t>(sz);
        auto raw = std::make_unique<nvm::PmemDevice>(dopts);
        if (std::fread(raw->raw(), 1, dopts.size_bytes, f) == dopts.size_bytes) {
          dev = std::move(raw);
        }
      }
      std::fclose(f);
    }
  }
  if (dev == nullptr) {
    std::fprintf(stderr, "jnvm_inspect: %s is not a device image\n", path);
    return 1;
  }

  // Open with recovery (an image may have been saved mid-flight); the
  // runtime prints nothing on success.
  auto rt = core::JnvmRuntime::Open(dev.get());
  if (summary) {
    return PrintSummary(path, dev.get(), rt.get());
  }
  std::printf("image: %s (%zu bytes)\n\n", path, dev->size());
  heap::Heap& h = rt->heap();

  std::printf("superblock:\n");
  std::printf("  block size    : %u B (payload %u B)\n", h.block_size(),
              h.payload_per_block());
  std::printf("  first block   : 0x%" PRIx64 "\n", h.first_block());
  std::printf("  bump pointer  : 0x%" PRIx64 "\n", h.bump());
  std::printf("  root master   : 0x%" PRIx64 "\n", h.root_master());
  std::printf("  clean shutdown: %s\n\n", h.was_clean_shutdown() ? "yes" : "NO");

  const auto usage = h.GetUsage();
  std::printf("usage: %" PRIu64 "/%" PRIu64 " blocks in use (%.1f%%), %" PRIu64
              " recycled in the free queue\n\n",
              usage.in_use_blocks, usage.capacity_blocks, usage.utilization * 100,
              usage.free_queue_blocks);

  PrintCensus(h);

  std::printf("\nrecovery report (from opening this image):\n");
  const auto& rep = rt->recovery_report();
  std::printf("  redo logs: %u replayed, %u aborted; %" PRIu64
              " objects traversed, %" PRIu64 " refs nullified, %" PRIu64
              " blocks freed\n",
              rep.replay.replayed_logs, rep.replay.aborted_logs,
              rep.traversed_objects, rep.nullified_refs, rep.sweep.freed_blocks);

  std::printf("\nintegrity audit: ");
  const auto report =
      core::VerifyHeapIntegrity(*rt, core::IntegrityOptions{.audit_fa_logs = true});
  std::printf("%s\n", report.Summary().c_str());
  std::printf("\nroot map bindings (%zu):\n", rt->root().Size());
  for (const std::string& key : rt->root().Keys()) {
    std::printf("  %s\n", key.c_str());
  }
  std::printf("\n");
  PrintReplLog(*rt);
  PrintClusterMeta(*rt, /*summary=*/false);
  rt->Abandon();  // inspection must not alter the on-disk image
  return report.ok() ? 0 : 2;
}
