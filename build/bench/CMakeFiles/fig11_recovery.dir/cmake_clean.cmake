file(REMOVE_RECURSE
  "CMakeFiles/fig11_recovery.dir/fig11_recovery.cc.o"
  "CMakeFiles/fig11_recovery.dir/fig11_recovery.cc.o.d"
  "fig11_recovery"
  "fig11_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
