# Empty dependencies file for tab03_block_access.
# This may be replaced when dependencies are built.
