file(REMOVE_RECURSE
  "CMakeFiles/tab03_block_access.dir/tab03_block_access.cc.o"
  "CMakeFiles/tab03_block_access.dir/tab03_block_access.cc.o.d"
  "tab03_block_access"
  "tab03_block_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_block_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
