# Empty dependencies file for tab01_deletion_sites.
# This may be replaced when dependencies are built.
