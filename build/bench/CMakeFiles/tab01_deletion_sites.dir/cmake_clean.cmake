file(REMOVE_RECURSE
  "CMakeFiles/tab01_deletion_sites.dir/tab01_deletion_sites.cc.o"
  "CMakeFiles/tab01_deletion_sites.dir/tab01_deletion_sites.cc.o.d"
  "tab01_deletion_sites"
  "tab01_deletion_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_deletion_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
