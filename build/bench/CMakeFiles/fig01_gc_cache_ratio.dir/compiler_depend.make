# Empty compiler generated dependencies file for fig01_gc_cache_ratio.
# This may be replaced when dependencies are built.
