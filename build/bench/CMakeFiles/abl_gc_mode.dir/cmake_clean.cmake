file(REMOVE_RECURSE
  "CMakeFiles/abl_gc_mode.dir/abl_gc_mode.cc.o"
  "CMakeFiles/abl_gc_mode.dir/abl_gc_mode.cc.o.d"
  "abl_gc_mode"
  "abl_gc_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gc_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
