# Empty compiler generated dependencies file for abl_gc_mode.
# This may be replaced when dependencies are built.
