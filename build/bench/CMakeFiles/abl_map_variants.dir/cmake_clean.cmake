file(REMOVE_RECURSE
  "CMakeFiles/abl_map_variants.dir/abl_map_variants.cc.o"
  "CMakeFiles/abl_map_variants.dir/abl_map_variants.cc.o.d"
  "abl_map_variants"
  "abl_map_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_map_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
