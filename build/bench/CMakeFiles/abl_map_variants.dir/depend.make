# Empty dependencies file for abl_map_variants.
# This may be replaced when dependencies are built.
