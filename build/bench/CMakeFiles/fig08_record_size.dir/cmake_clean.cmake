file(REMOVE_RECURSE
  "CMakeFiles/fig08_record_size.dir/fig08_record_size.cc.o"
  "CMakeFiles/fig08_record_size.dir/fig08_record_size.cc.o.d"
  "fig08_record_size"
  "fig08_record_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_record_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
