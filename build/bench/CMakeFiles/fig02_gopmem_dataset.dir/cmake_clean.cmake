file(REMOVE_RECURSE
  "CMakeFiles/fig02_gopmem_dataset.dir/fig02_gopmem_dataset.cc.o"
  "CMakeFiles/fig02_gopmem_dataset.dir/fig02_gopmem_dataset.cc.o.d"
  "fig02_gopmem_dataset"
  "fig02_gopmem_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_gopmem_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
