# Empty dependencies file for fig02_gopmem_dataset.
# This may be replaced when dependencies are built.
