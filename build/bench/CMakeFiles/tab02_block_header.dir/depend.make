# Empty dependencies file for tab02_block_header.
# This may be replaced when dependencies are built.
