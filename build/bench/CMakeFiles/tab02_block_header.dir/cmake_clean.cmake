file(REMOVE_RECURSE
  "CMakeFiles/tab02_block_header.dir/tab02_block_header.cc.o"
  "CMakeFiles/tab02_block_header.dir/tab02_block_header.cc.o.d"
  "tab02_block_header"
  "tab02_block_header.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_block_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
