file(REMOVE_RECURSE
  "CMakeFiles/abl_fence_batching.dir/abl_fence_batching.cc.o"
  "CMakeFiles/abl_fence_batching.dir/abl_fence_batching.cc.o.d"
  "abl_fence_batching"
  "abl_fence_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fence_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
