# Empty dependencies file for abl_fence_batching.
# This may be replaced when dependencies are built.
