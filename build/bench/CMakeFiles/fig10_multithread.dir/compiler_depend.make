# Empty compiler generated dependencies file for fig10_multithread.
# This may be replaced when dependencies are built.
