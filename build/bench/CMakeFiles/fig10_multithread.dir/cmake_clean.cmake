file(REMOVE_RECURSE
  "CMakeFiles/fig10_multithread.dir/fig10_multithread.cc.o"
  "CMakeFiles/fig10_multithread.dir/fig10_multithread.cc.o.d"
  "fig10_multithread"
  "fig10_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
