# Empty dependencies file for fig12_pdt_vs_volatile.
# This may be replaced when dependencies are built.
