file(REMOVE_RECURSE
  "CMakeFiles/fig12_pdt_vs_volatile.dir/fig12_pdt_vs_volatile.cc.o"
  "CMakeFiles/fig12_pdt_vs_volatile.dir/fig12_pdt_vs_volatile.cc.o.d"
  "fig12_pdt_vs_volatile"
  "fig12_pdt_vs_volatile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pdt_vs_volatile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
