
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_pdt_vs_volatile.cc" "bench/CMakeFiles/fig12_pdt_vs_volatile.dir/fig12_pdt_vs_volatile.cc.o" "gcc" "bench/CMakeFiles/fig12_pdt_vs_volatile.dir/fig12_pdt_vs_volatile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ycsb/CMakeFiles/jnvm_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcb/CMakeFiles/jnvm_tpcb.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/jnvm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/gcsim/CMakeFiles/jnvm_gcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmdkx/CMakeFiles/jnvm_pmdkx.dir/DependInfo.cmake"
  "/root/repo/build/src/pdt/CMakeFiles/jnvm_pdt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jnvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pfa/CMakeFiles/jnvm_pfa.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/jnvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/jnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
