file(REMOVE_RECURSE
  "CMakeFiles/fig07_ycsb.dir/fig07_ycsb.cc.o"
  "CMakeFiles/fig07_ycsb.dir/fig07_ycsb.cc.o.d"
  "fig07_ycsb"
  "fig07_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
