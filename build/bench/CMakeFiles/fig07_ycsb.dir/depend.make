# Empty dependencies file for fig07_ycsb.
# This may be replaced when dependencies are built.
