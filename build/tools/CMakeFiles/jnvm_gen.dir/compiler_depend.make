# Empty compiler generated dependencies file for jnvm_gen.
# This may be replaced when dependencies are built.
