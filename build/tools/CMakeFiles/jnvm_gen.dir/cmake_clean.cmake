file(REMOVE_RECURSE
  "CMakeFiles/jnvm_gen.dir/jnvm_gen.cc.o"
  "CMakeFiles/jnvm_gen.dir/jnvm_gen.cc.o.d"
  "jnvm_gen"
  "jnvm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
