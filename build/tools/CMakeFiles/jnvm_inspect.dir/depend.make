# Empty dependencies file for jnvm_inspect.
# This may be replaced when dependencies are built.
