file(REMOVE_RECURSE
  "CMakeFiles/jnvm_inspect.dir/jnvm_inspect.cc.o"
  "CMakeFiles/jnvm_inspect.dir/jnvm_inspect.cc.o.d"
  "jnvm_inspect"
  "jnvm_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
