# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_device_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/pfa_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pdt_test[1]_include.cmake")
include("/root/repo/build/tests/pdt_crash_test[1]_include.cmake")
include("/root/repo/build/tests/gcsim_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/pmdkx_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_tpcb_test[1]_include.cmake")
include("/root/repo/build/tests/heap_param_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_edge_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/recover_hook_test[1]_include.cmake")
include("/root/repo/build/tests/gcsim_incremental_test[1]_include.cmake")
include("/root/repo/build/tests/store_integration_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_crash_test[1]_include.cmake")
include("/root/repo/build/tests/pset_range_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/tpcb_full_test[1]_include.cmake")
