# Empty dependencies file for pmdkx_test.
# This may be replaced when dependencies are built.
