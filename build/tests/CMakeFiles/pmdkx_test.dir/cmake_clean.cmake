file(REMOVE_RECURSE
  "CMakeFiles/pmdkx_test.dir/pmdkx_test.cc.o"
  "CMakeFiles/pmdkx_test.dir/pmdkx_test.cc.o.d"
  "pmdkx_test"
  "pmdkx_test.pdb"
  "pmdkx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmdkx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
