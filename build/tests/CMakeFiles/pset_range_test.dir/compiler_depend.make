# Empty compiler generated dependencies file for pset_range_test.
# This may be replaced when dependencies are built.
