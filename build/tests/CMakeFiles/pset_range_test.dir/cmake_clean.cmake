file(REMOVE_RECURSE
  "CMakeFiles/pset_range_test.dir/pset_range_test.cc.o"
  "CMakeFiles/pset_range_test.dir/pset_range_test.cc.o.d"
  "pset_range_test"
  "pset_range_test.pdb"
  "pset_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pset_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
