file(REMOVE_RECURSE
  "CMakeFiles/pdt_test.dir/pdt_test.cc.o"
  "CMakeFiles/pdt_test.dir/pdt_test.cc.o.d"
  "pdt_test"
  "pdt_test.pdb"
  "pdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
