file(REMOVE_RECURSE
  "CMakeFiles/pdt_crash_test.dir/pdt_crash_test.cc.o"
  "CMakeFiles/pdt_crash_test.dir/pdt_crash_test.cc.o.d"
  "pdt_crash_test"
  "pdt_crash_test.pdb"
  "pdt_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
