# Empty dependencies file for pdt_crash_test.
# This may be replaced when dependencies are built.
