file(REMOVE_RECURSE
  "CMakeFiles/tpcb_full_test.dir/tpcb_full_test.cc.o"
  "CMakeFiles/tpcb_full_test.dir/tpcb_full_test.cc.o.d"
  "tpcb_full_test"
  "tpcb_full_test.pdb"
  "tpcb_full_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcb_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
