# Empty compiler generated dependencies file for tpcb_full_test.
# This may be replaced when dependencies are built.
