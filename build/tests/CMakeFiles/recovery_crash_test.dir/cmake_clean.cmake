file(REMOVE_RECURSE
  "CMakeFiles/recovery_crash_test.dir/recovery_crash_test.cc.o"
  "CMakeFiles/recovery_crash_test.dir/recovery_crash_test.cc.o.d"
  "recovery_crash_test"
  "recovery_crash_test.pdb"
  "recovery_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
