# Empty dependencies file for recovery_crash_test.
# This may be replaced when dependencies are built.
