file(REMOVE_RECURSE
  "CMakeFiles/gcsim_incremental_test.dir/gcsim_incremental_test.cc.o"
  "CMakeFiles/gcsim_incremental_test.dir/gcsim_incremental_test.cc.o.d"
  "gcsim_incremental_test"
  "gcsim_incremental_test.pdb"
  "gcsim_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcsim_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
