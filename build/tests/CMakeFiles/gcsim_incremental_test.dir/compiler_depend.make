# Empty compiler generated dependencies file for gcsim_incremental_test.
# This may be replaced when dependencies are built.
