# Empty compiler generated dependencies file for recover_hook_test.
# This may be replaced when dependencies are built.
