file(REMOVE_RECURSE
  "CMakeFiles/recover_hook_test.dir/recover_hook_test.cc.o"
  "CMakeFiles/recover_hook_test.dir/recover_hook_test.cc.o.d"
  "recover_hook_test"
  "recover_hook_test.pdb"
  "recover_hook_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recover_hook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
