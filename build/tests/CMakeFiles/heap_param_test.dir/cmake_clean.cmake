file(REMOVE_RECURSE
  "CMakeFiles/heap_param_test.dir/heap_param_test.cc.o"
  "CMakeFiles/heap_param_test.dir/heap_param_test.cc.o.d"
  "heap_param_test"
  "heap_param_test.pdb"
  "heap_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
