# Empty compiler generated dependencies file for heap_param_test.
# This may be replaced when dependencies are built.
