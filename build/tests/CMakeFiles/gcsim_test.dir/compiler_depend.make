# Empty compiler generated dependencies file for gcsim_test.
# This may be replaced when dependencies are built.
