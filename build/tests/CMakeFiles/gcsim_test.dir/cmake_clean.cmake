file(REMOVE_RECURSE
  "CMakeFiles/gcsim_test.dir/gcsim_test.cc.o"
  "CMakeFiles/gcsim_test.dir/gcsim_test.cc.o.d"
  "gcsim_test"
  "gcsim_test.pdb"
  "gcsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
