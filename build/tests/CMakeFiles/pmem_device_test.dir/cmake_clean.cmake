file(REMOVE_RECURSE
  "CMakeFiles/pmem_device_test.dir/pmem_device_test.cc.o"
  "CMakeFiles/pmem_device_test.dir/pmem_device_test.cc.o.d"
  "pmem_device_test"
  "pmem_device_test.pdb"
  "pmem_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmem_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
