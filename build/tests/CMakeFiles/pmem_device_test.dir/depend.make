# Empty dependencies file for pmem_device_test.
# This may be replaced when dependencies are built.
