file(REMOVE_RECURSE
  "CMakeFiles/ycsb_tpcb_test.dir/ycsb_tpcb_test.cc.o"
  "CMakeFiles/ycsb_tpcb_test.dir/ycsb_tpcb_test.cc.o.d"
  "ycsb_tpcb_test"
  "ycsb_tpcb_test.pdb"
  "ycsb_tpcb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_tpcb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
