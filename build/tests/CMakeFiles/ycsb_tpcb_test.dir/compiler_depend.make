# Empty compiler generated dependencies file for ycsb_tpcb_test.
# This may be replaced when dependencies are built.
