file(REMOVE_RECURSE
  "CMakeFiles/store_integration_test.dir/store_integration_test.cc.o"
  "CMakeFiles/store_integration_test.dir/store_integration_test.cc.o.d"
  "store_integration_test"
  "store_integration_test.pdb"
  "store_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
