# Empty compiler generated dependencies file for store_integration_test.
# This may be replaced when dependencies are built.
