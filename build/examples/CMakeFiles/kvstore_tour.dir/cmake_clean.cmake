file(REMOVE_RECURSE
  "CMakeFiles/kvstore_tour.dir/kvstore_tour.cpp.o"
  "CMakeFiles/kvstore_tour.dir/kvstore_tour.cpp.o.d"
  "kvstore_tour"
  "kvstore_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
