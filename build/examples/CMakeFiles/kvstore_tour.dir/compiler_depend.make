# Empty compiler generated dependencies file for kvstore_tour.
# This may be replaced when dependencies are built.
