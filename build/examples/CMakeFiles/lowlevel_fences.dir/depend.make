# Empty dependencies file for lowlevel_fences.
# This may be replaced when dependencies are built.
