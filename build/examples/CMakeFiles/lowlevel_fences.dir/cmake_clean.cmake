file(REMOVE_RECURSE
  "CMakeFiles/lowlevel_fences.dir/lowlevel_fences.cpp.o"
  "CMakeFiles/lowlevel_fences.dir/lowlevel_fences.cpp.o.d"
  "lowlevel_fences"
  "lowlevel_fences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowlevel_fences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
