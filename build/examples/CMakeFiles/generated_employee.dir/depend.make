# Empty dependencies file for generated_employee.
# This may be replaced when dependencies are built.
