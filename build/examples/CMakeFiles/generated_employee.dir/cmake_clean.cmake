file(REMOVE_RECURSE
  "../generated/employee.gen.h"
  "CMakeFiles/generated_employee.dir/generated_employee.cpp.o"
  "CMakeFiles/generated_employee.dir/generated_employee.cpp.o.d"
  "generated_employee"
  "generated_employee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_employee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
