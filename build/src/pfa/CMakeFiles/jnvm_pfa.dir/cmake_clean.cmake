file(REMOVE_RECURSE
  "CMakeFiles/jnvm_pfa.dir/fa_context.cc.o"
  "CMakeFiles/jnvm_pfa.dir/fa_context.cc.o.d"
  "CMakeFiles/jnvm_pfa.dir/fa_log.cc.o"
  "CMakeFiles/jnvm_pfa.dir/fa_log.cc.o.d"
  "libjnvm_pfa.a"
  "libjnvm_pfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_pfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
