# Empty compiler generated dependencies file for jnvm_pfa.
# This may be replaced when dependencies are built.
