file(REMOVE_RECURSE
  "libjnvm_pfa.a"
)
