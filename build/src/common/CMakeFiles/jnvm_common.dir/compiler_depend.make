# Empty compiler generated dependencies file for jnvm_common.
# This may be replaced when dependencies are built.
