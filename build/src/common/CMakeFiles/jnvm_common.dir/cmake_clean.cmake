file(REMOVE_RECURSE
  "CMakeFiles/jnvm_common.dir/histogram.cc.o"
  "CMakeFiles/jnvm_common.dir/histogram.cc.o.d"
  "CMakeFiles/jnvm_common.dir/rand.cc.o"
  "CMakeFiles/jnvm_common.dir/rand.cc.o.d"
  "libjnvm_common.a"
  "libjnvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
