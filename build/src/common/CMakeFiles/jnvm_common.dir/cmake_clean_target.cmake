file(REMOVE_RECURSE
  "libjnvm_common.a"
)
