file(REMOVE_RECURSE
  "CMakeFiles/jnvm_nvm.dir/pmem_device.cc.o"
  "CMakeFiles/jnvm_nvm.dir/pmem_device.cc.o.d"
  "libjnvm_nvm.a"
  "libjnvm_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
