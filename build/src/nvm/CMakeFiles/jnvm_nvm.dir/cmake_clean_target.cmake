file(REMOVE_RECURSE
  "libjnvm_nvm.a"
)
