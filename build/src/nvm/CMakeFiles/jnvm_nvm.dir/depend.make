# Empty dependencies file for jnvm_nvm.
# This may be replaced when dependencies are built.
