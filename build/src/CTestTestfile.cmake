# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nvm")
subdirs("heap")
subdirs("pfa")
subdirs("core")
subdirs("pdt")
subdirs("gcsim")
subdirs("fs")
subdirs("pmdkx")
subdirs("store")
subdirs("ycsb")
subdirs("tpcb")
