# Empty dependencies file for jnvm_store.
# This may be replaced when dependencies are built.
