
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/fs_backend.cc" "src/store/CMakeFiles/jnvm_store.dir/fs_backend.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/fs_backend.cc.o.d"
  "/root/repo/src/store/jpdt_backend.cc" "src/store/CMakeFiles/jnvm_store.dir/jpdt_backend.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/jpdt_backend.cc.o.d"
  "/root/repo/src/store/jpfa_backend.cc" "src/store/CMakeFiles/jnvm_store.dir/jpfa_backend.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/jpfa_backend.cc.o.d"
  "/root/repo/src/store/jpfa_map.cc" "src/store/CMakeFiles/jnvm_store.dir/jpfa_map.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/jpfa_map.cc.o.d"
  "/root/repo/src/store/kvstore.cc" "src/store/CMakeFiles/jnvm_store.dir/kvstore.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/kvstore.cc.o.d"
  "/root/repo/src/store/pcj_backend.cc" "src/store/CMakeFiles/jnvm_store.dir/pcj_backend.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/pcj_backend.cc.o.d"
  "/root/repo/src/store/precord.cc" "src/store/CMakeFiles/jnvm_store.dir/precord.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/precord.cc.o.d"
  "/root/repo/src/store/record.cc" "src/store/CMakeFiles/jnvm_store.dir/record.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/record.cc.o.d"
  "/root/repo/src/store/volatile_backend.cc" "src/store/CMakeFiles/jnvm_store.dir/volatile_backend.cc.o" "gcc" "src/store/CMakeFiles/jnvm_store.dir/volatile_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jnvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pdt/CMakeFiles/jnvm_pdt.dir/DependInfo.cmake"
  "/root/repo/build/src/gcsim/CMakeFiles/jnvm_gcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmdkx/CMakeFiles/jnvm_pmdkx.dir/DependInfo.cmake"
  "/root/repo/build/src/pfa/CMakeFiles/jnvm_pfa.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/jnvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/jnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
