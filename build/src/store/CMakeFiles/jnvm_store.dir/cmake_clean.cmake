file(REMOVE_RECURSE
  "CMakeFiles/jnvm_store.dir/fs_backend.cc.o"
  "CMakeFiles/jnvm_store.dir/fs_backend.cc.o.d"
  "CMakeFiles/jnvm_store.dir/jpdt_backend.cc.o"
  "CMakeFiles/jnvm_store.dir/jpdt_backend.cc.o.d"
  "CMakeFiles/jnvm_store.dir/jpfa_backend.cc.o"
  "CMakeFiles/jnvm_store.dir/jpfa_backend.cc.o.d"
  "CMakeFiles/jnvm_store.dir/jpfa_map.cc.o"
  "CMakeFiles/jnvm_store.dir/jpfa_map.cc.o.d"
  "CMakeFiles/jnvm_store.dir/kvstore.cc.o"
  "CMakeFiles/jnvm_store.dir/kvstore.cc.o.d"
  "CMakeFiles/jnvm_store.dir/pcj_backend.cc.o"
  "CMakeFiles/jnvm_store.dir/pcj_backend.cc.o.d"
  "CMakeFiles/jnvm_store.dir/precord.cc.o"
  "CMakeFiles/jnvm_store.dir/precord.cc.o.d"
  "CMakeFiles/jnvm_store.dir/record.cc.o"
  "CMakeFiles/jnvm_store.dir/record.cc.o.d"
  "CMakeFiles/jnvm_store.dir/volatile_backend.cc.o"
  "CMakeFiles/jnvm_store.dir/volatile_backend.cc.o.d"
  "libjnvm_store.a"
  "libjnvm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
