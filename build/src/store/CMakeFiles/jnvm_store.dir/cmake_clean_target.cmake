file(REMOVE_RECURSE
  "libjnvm_store.a"
)
