file(REMOVE_RECURSE
  "CMakeFiles/jnvm_ycsb.dir/runner.cc.o"
  "CMakeFiles/jnvm_ycsb.dir/runner.cc.o.d"
  "libjnvm_ycsb.a"
  "libjnvm_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
