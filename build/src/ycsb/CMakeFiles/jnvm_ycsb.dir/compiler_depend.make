# Empty compiler generated dependencies file for jnvm_ycsb.
# This may be replaced when dependencies are built.
