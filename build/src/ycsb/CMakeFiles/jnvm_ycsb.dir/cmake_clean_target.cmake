file(REMOVE_RECURSE
  "libjnvm_ycsb.a"
)
