# Empty compiler generated dependencies file for jnvm_pmdkx.
# This may be replaced when dependencies are built.
