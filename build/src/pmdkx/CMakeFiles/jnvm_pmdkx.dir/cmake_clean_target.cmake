file(REMOVE_RECURSE
  "libjnvm_pmdkx.a"
)
