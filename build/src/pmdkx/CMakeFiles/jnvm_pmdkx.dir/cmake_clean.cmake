file(REMOVE_RECURSE
  "CMakeFiles/jnvm_pmdkx.dir/pmdk_pool.cc.o"
  "CMakeFiles/jnvm_pmdkx.dir/pmdk_pool.cc.o.d"
  "libjnvm_pmdkx.a"
  "libjnvm_pmdkx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_pmdkx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
