# CMake generated Testfile for 
# Source directory: /root/repo/src/pmdkx
# Build directory: /root/repo/build/src/pmdkx
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
