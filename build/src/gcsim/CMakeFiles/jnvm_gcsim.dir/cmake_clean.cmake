file(REMOVE_RECURSE
  "CMakeFiles/jnvm_gcsim.dir/managed_heap.cc.o"
  "CMakeFiles/jnvm_gcsim.dir/managed_heap.cc.o.d"
  "libjnvm_gcsim.a"
  "libjnvm_gcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_gcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
