# Empty compiler generated dependencies file for jnvm_gcsim.
# This may be replaced when dependencies are built.
