file(REMOVE_RECURSE
  "libjnvm_gcsim.a"
)
