# Empty compiler generated dependencies file for jnvm_tpcb.
# This may be replaced when dependencies are built.
