file(REMOVE_RECURSE
  "libjnvm_tpcb.a"
)
