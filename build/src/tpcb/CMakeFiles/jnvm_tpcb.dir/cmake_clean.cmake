file(REMOVE_RECURSE
  "CMakeFiles/jnvm_tpcb.dir/bank.cc.o"
  "CMakeFiles/jnvm_tpcb.dir/bank.cc.o.d"
  "libjnvm_tpcb.a"
  "libjnvm_tpcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_tpcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
