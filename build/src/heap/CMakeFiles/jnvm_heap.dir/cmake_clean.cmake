file(REMOVE_RECURSE
  "CMakeFiles/jnvm_heap.dir/free_queue.cc.o"
  "CMakeFiles/jnvm_heap.dir/free_queue.cc.o.d"
  "CMakeFiles/jnvm_heap.dir/heap.cc.o"
  "CMakeFiles/jnvm_heap.dir/heap.cc.o.d"
  "libjnvm_heap.a"
  "libjnvm_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
