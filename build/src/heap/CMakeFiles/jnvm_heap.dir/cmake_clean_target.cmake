file(REMOVE_RECURSE
  "libjnvm_heap.a"
)
