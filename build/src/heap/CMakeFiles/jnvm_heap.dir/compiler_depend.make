# Empty compiler generated dependencies file for jnvm_heap.
# This may be replaced when dependencies are built.
