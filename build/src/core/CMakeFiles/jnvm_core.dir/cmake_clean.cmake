file(REMOVE_RECURSE
  "CMakeFiles/jnvm_core.dir/integrity.cc.o"
  "CMakeFiles/jnvm_core.dir/integrity.cc.o.d"
  "CMakeFiles/jnvm_core.dir/object_view.cc.o"
  "CMakeFiles/jnvm_core.dir/object_view.cc.o.d"
  "CMakeFiles/jnvm_core.dir/pobject.cc.o"
  "CMakeFiles/jnvm_core.dir/pobject.cc.o.d"
  "CMakeFiles/jnvm_core.dir/pool.cc.o"
  "CMakeFiles/jnvm_core.dir/pool.cc.o.d"
  "CMakeFiles/jnvm_core.dir/recovery.cc.o"
  "CMakeFiles/jnvm_core.dir/recovery.cc.o.d"
  "CMakeFiles/jnvm_core.dir/ref_array.cc.o"
  "CMakeFiles/jnvm_core.dir/ref_array.cc.o.d"
  "CMakeFiles/jnvm_core.dir/registry.cc.o"
  "CMakeFiles/jnvm_core.dir/registry.cc.o.d"
  "CMakeFiles/jnvm_core.dir/root_map.cc.o"
  "CMakeFiles/jnvm_core.dir/root_map.cc.o.d"
  "CMakeFiles/jnvm_core.dir/runtime.cc.o"
  "CMakeFiles/jnvm_core.dir/runtime.cc.o.d"
  "libjnvm_core.a"
  "libjnvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
