file(REMOVE_RECURSE
  "libjnvm_core.a"
)
