# Empty compiler generated dependencies file for jnvm_core.
# This may be replaced when dependencies are built.
