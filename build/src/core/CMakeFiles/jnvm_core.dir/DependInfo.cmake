
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/integrity.cc" "src/core/CMakeFiles/jnvm_core.dir/integrity.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/integrity.cc.o.d"
  "/root/repo/src/core/object_view.cc" "src/core/CMakeFiles/jnvm_core.dir/object_view.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/object_view.cc.o.d"
  "/root/repo/src/core/pobject.cc" "src/core/CMakeFiles/jnvm_core.dir/pobject.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/pobject.cc.o.d"
  "/root/repo/src/core/pool.cc" "src/core/CMakeFiles/jnvm_core.dir/pool.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/pool.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/core/CMakeFiles/jnvm_core.dir/recovery.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/recovery.cc.o.d"
  "/root/repo/src/core/ref_array.cc" "src/core/CMakeFiles/jnvm_core.dir/ref_array.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/ref_array.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/jnvm_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/registry.cc.o.d"
  "/root/repo/src/core/root_map.cc" "src/core/CMakeFiles/jnvm_core.dir/root_map.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/root_map.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/jnvm_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/jnvm_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfa/CMakeFiles/jnvm_pfa.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/jnvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/jnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
