file(REMOVE_RECURSE
  "CMakeFiles/jnvm_pdt.dir/parray.cc.o"
  "CMakeFiles/jnvm_pdt.dir/parray.cc.o.d"
  "CMakeFiles/jnvm_pdt.dir/pext_array.cc.o"
  "CMakeFiles/jnvm_pdt.dir/pext_array.cc.o.d"
  "CMakeFiles/jnvm_pdt.dir/ppair.cc.o"
  "CMakeFiles/jnvm_pdt.dir/ppair.cc.o.d"
  "CMakeFiles/jnvm_pdt.dir/pstring.cc.o"
  "CMakeFiles/jnvm_pdt.dir/pstring.cc.o.d"
  "libjnvm_pdt.a"
  "libjnvm_pdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnvm_pdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
