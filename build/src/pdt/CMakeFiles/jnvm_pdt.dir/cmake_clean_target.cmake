file(REMOVE_RECURSE
  "libjnvm_pdt.a"
)
