# Empty dependencies file for jnvm_pdt.
# This may be replaced when dependencies are built.
