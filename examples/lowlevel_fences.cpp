// The low-level interface (Figure 5): batching the validation of several
// freshly allocated objects under a *single* pfence.
//
// Shows the validate/publish decoupling of §3.2.3 and measures the fence
// savings against the naive one-fence-per-object protocol.
//
//   $ ./lowlevel_fences
#include <cstdio>

#include "src/core/runtime.h"

using jnvm::core::ClassInfo;
using jnvm::core::JnvmRuntime;
using jnvm::core::MakeClassInfo;
using jnvm::core::ObjectView;
using jnvm::core::PackFields;
using jnvm::core::PObject;
using jnvm::core::RefVisitor;
using jnvm::core::Resurrect;

// class LowLevel implements PObject { PObject o; ... }
class LowLevel final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<LowLevel>("example.LowLevel", &LowLevel::Trace));
    return info;
  }

  explicit LowLevel(Resurrect) {}

  // LowLevel(String name) { o = new Other(); o.pwb(); o.validate(); pwb();
  //                         JNVM.root.wput(name, this); }
  LowLevel(JnvmRuntime& rt, const std::string& name) {
    AllocatePersistent(rt, Class(), kL.bytes);
    LowLevel* sub = new LowLevel(rt);  // the sub-object ("Other")
    WritePObject(kL.off[0], sub);
    sub->Pwb();       // o.pwb()
    sub->Validate();  // o.validate()   — no fence!
    delete sub;       // only the proxy dies; the persistent structure stays
    Pwb();            // pwb()
    rt.root().Wput(name, this);  // weak put — no fence either
  }

  static void Trace(ObjectView& v, RefVisitor& r) { r.VisitRef(v, kL.off[0]); }

 private:
  explicit LowLevel(JnvmRuntime& rt) { AllocatePersistent(rt, Class(), kL.bytes); }
  static constexpr auto kL = PackFields<1>({jnvm::core::kRefField});
};

int main() {
  jnvm::nvm::DeviceOptions dopts;
  dopts.size_bytes = 32 << 20;
  jnvm::nvm::PmemDevice pmem(dopts);
  auto rt = JnvmRuntime::Format(&pmem);

  constexpr int kBatch = 1000;

  // --- Figure 5 protocol: one fence for the whole batch -------------------
  pmem.ResetStats();
  {
    std::vector<std::unique_ptr<LowLevel>> objs;
    objs.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      objs.push_back(std::make_unique<LowLevel>(*rt, "a" + std::to_string(i)));
    }
    rt->Pfence();  // the unique pfence (line 16 of Figure 5)
    for (auto& o : objs) {
      o->Validate();
    }
    rt->Psync();
  }
  const auto batched = pmem.stats();

  // --- Naive protocol: validate + fence per object -------------------------
  pmem.ResetStats();
  for (int i = 0; i < kBatch; ++i) {
    LowLevel o(*rt, "b" + std::to_string(i));
    o.Pwb();
    o.Validate();
    rt->Pfence();  // one fence per publication (§4.1.6 style)
  }
  const auto naive = pmem.stats();

  std::printf("batch of %d objects (each with one sub-object):\n", kBatch);
  std::printf("  Figure 5 batched validation : %6llu pfences\n",
              static_cast<unsigned long long>(batched.pfences + batched.psyncs));
  std::printf("  naive fence-per-object      : %6llu pfences\n",
              static_cast<unsigned long long>(naive.pfences + naive.psyncs));
  std::printf("  -> %.0fx fewer fences; if a crash hits before the batch fence,\n"
              "     recovery deletes every invalid object (correct by §3.2.3).\n",
              static_cast<double>(naive.pfences) /
                  static_cast<double>(batched.pfences + batched.psyncs));
  return 0;
}
