// A TPC-B-like bank on failure-atomic blocks (§5.3.3), with a simulated
// power failure in the middle of a transfer storm.
//
// Demonstrates: integer-keyed persistent maps, failure-atomic transfers,
// crash injection on the strict device, recovery, and the invariant that
// money is conserved across the crash.
//
//   $ ./bank
#include <cstdio>

#include "src/common/rand.h"
#include "src/tpcb/bank.h"

int main() {
  constexpr int64_t kAccounts = 1000;
  constexpr int64_t kInitial = 1000;

  jnvm::nvm::DeviceOptions dopts;
  dopts.size_bytes = 64 << 20;
  dopts.strict = true;  // track stores so a crash can tear unfenced state
  auto pmem = std::make_unique<jnvm::nvm::PmemDevice>(dopts);

  uint64_t completed = 0;
  {
    auto rt = jnvm::core::JnvmRuntime::Format(pmem.get());
    jnvm::tpcb::JpfaBank bank(rt.get());
    bank.CreateAccounts(kAccounts, kInitial);
    rt->Psync();
    std::printf("created %llu accounts of %lld with balance %lld\n",
                static_cast<unsigned long long>(bank.NumAccounts()),
                static_cast<long long>(jnvm::tpcb::PAccount::kBytes),
                static_cast<long long>(kInitial));

    // Pull the plug somewhere inside the 5000th-ish transfer.
    pmem->ScheduleCrashAfter(400'000);
    jnvm::Xorshift rng(42);
    try {
      for (int i = 0; i < 1'000'000; ++i) {
        bank.Transfer(static_cast<int64_t>(rng.NextBelow(kAccounts)),
                      static_cast<int64_t>(rng.NextBelow(kAccounts)),
                      static_cast<int64_t>(rng.NextBelow(100)));
        ++completed;
      }
      pmem->CancelScheduledCrash();
    } catch (const jnvm::nvm::SimulatedCrash& crash) {
      std::printf("power failure at persistence event %llu after %llu transfers\n",
                  static_cast<unsigned long long>(crash.event_number),
                  static_cast<unsigned long long>(completed));
    }
    rt->Abandon();  // the process is gone; nothing may touch the device
  }

  // Power failure semantics: unfenced cache lines may or may not have made
  // it to the media.
  pmem->Crash(/*eviction_seed=*/7);

  // Restart + recovery.
  auto rt = jnvm::core::JnvmRuntime::Open(pmem.get());
  const auto& rep = rt->recovery_report();
  std::printf("recovery: %u redo logs replayed, %u aborted, %llu objects traversed, "
              "%llu blocks freed (%.3f ms)\n",
              rep.replay.replayed_logs, rep.replay.aborted_logs,
              static_cast<unsigned long long>(rep.traversed_objects),
              static_cast<unsigned long long>(rep.sweep.freed_blocks),
              rep.seconds * 1e3);

  jnvm::tpcb::JpfaBank bank(rt.get());
  int64_t total = 0;
  for (int64_t i = 0; i < kAccounts; ++i) {
    total += bank.Balance(i);
  }
  std::printf("accounts after recovery: %llu\n",
              static_cast<unsigned long long>(bank.NumAccounts()));
  std::printf("total balance: %lld (expected %lld) — %s\n",
              static_cast<long long>(total),
              static_cast<long long>(kAccounts * kInitial),
              total == kAccounts * kInitial ? "conserved, transfers were atomic"
                                            : "VIOLATION");
  return total == kAccounts * kInitial ? 0 : 1;
}
