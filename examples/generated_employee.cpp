// Demonstrates the code generator (§2.5): `examples/employee.jnvm` is the
// class description — the analogue of annotating a legacy class with
// @Persistent — and CMake runs jnvm_gen over it at build time, producing
// the proxy class this example includes.
//
//   $ ./generated_employee
#include <cstdio>

#include "employee.gen.h"  // produced by jnvm_gen at build time
#include "src/pdt/pstring.h"

int main() {
  jnvm::nvm::DeviceOptions dopts;
  dopts.size_bytes = 16 << 20;
  jnvm::nvm::PmemDevice pmem(dopts);
  auto rt = jnvm::core::JnvmRuntime::Format(&pmem);

  // Build a two-level org chart out of generated proxies.
  Employee boss(*rt);
  jnvm::pdt::PString boss_name(*rt, "Ada");
  boss.SetName(&boss_name);
  boss.SetAge(36);
  boss.SetSalary(200'000);

  Employee dev(*rt);
  jnvm::pdt::PString dev_name(*rt, "Grace");
  dev.SetName(&dev_name);
  dev.SetAge(29);
  dev.SetSalary(150'000);
  dev.UpdateManager(&boss);  // generated §4.1.6 helper
  dev.review_count = 3;      // transient field, volatile

  rt->root().Put("dev", &dev);

  // Restart: everything persistent survives, transients reset.
  rt.reset();
  rt = jnvm::core::JnvmRuntime::Open(&pmem);
  const auto loaded = rt->root().GetAs<Employee>("dev");
  const auto manager = loaded->ManagerAs<Employee>();
  std::printf("dev:     %s, age %d, salary %lld (review_count=%d — transient)\n",
              loaded->NameAs<jnvm::pdt::PString>()->Str().c_str(), loaded->Age(),
              static_cast<long long>(loaded->Salary()), loaded->review_count);
  std::printf("manager: %s, age %d, salary %lld\n",
              manager->NameAs<jnvm::pdt::PString>()->Str().c_str(), manager->Age(),
              static_cast<long long>(manager->Salary()));
  return 0;
}
