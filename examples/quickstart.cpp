// Quickstart — the paper's Figure 3, in C++.
//
// A persistent `Simple` class with a string field, an int field and a
// transient field; a main() that initializes a region, retrieves or creates
// the root object, mutates it, replaces it and frees the old one.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/runtime.h"
#include "src/pdt/pstring.h"

using jnvm::core::ClassInfo;
using jnvm::core::JnvmRuntime;
using jnvm::core::MakeClassInfo;
using jnvm::core::ObjectView;
using jnvm::core::PackFields;
using jnvm::core::PObject;
using jnvm::core::RefVisitor;
using jnvm::core::Resurrect;
using jnvm::pdt::PString;

// @Persistent(fa="non-private") class Simple { PString msg; int x;
//                                              transient int y; ... }
class Simple final : public PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(MakeClassInfo<Simple>("example.Simple", &Simple::Trace));
    return info;
  }

  // The resurrect constructor (§3.1).
  explicit Simple(Resurrect) {}

  // Simple(int x) { this.x = x; this.msg = new PString("Hello, NVMM!"); }
  Simple(JnvmRuntime& rt, int32_t x) {
    rt.FaStart();  // fa="non-private": methods are failure-atomic
    AllocatePersistent(rt, Class(), kL.bytes);
    SetX(x);
    PString msg(rt, "Hello, NVMM!");
    WritePObject(kL.off[0], &msg);
    rt.FaEnd();
  }

  void Resurrect_() override { y = 0; }  // transient fields re-initialized

  int32_t X() const { return ReadField<int32_t>(kL.off[1]); }
  void SetX(int32_t v) { WriteField<int32_t>(kL.off[1], v); }

  void Inc() {
    JnvmRuntime& rt = runtime();
    rt.FaStart();
    SetX(X() + 1);
    rt.FaEnd();
  }

  std::string Msg() const {
    const auto s = ReadPObjectAs<PString>(kL.off[0]);
    return s == nullptr ? "" : s->Str();
  }
  jnvm::nvm::Offset MsgRef() const { return ReadRefRaw(kL.off[0]); }

  int y = 0;  // transient int y;

  static void Trace(ObjectView& v, RefVisitor& r) { r.VisitRef(v, kL.off[0]); }

 private:
  static constexpr auto kL = PackFields<2>({jnvm::core::kRefField, 4});
};

int main() {
  // JNVM.init("/mnt/pmem/simple", 1024*1024) — here the "DIMM" is simulated.
  jnvm::nvm::DeviceOptions dopts;
  dopts.size_bytes = 8 << 20;
  jnvm::nvm::PmemDevice pmem(dopts);
  auto rt = JnvmRuntime::Format(&pmem);

  // if (!JNVM.root.exists("simple")) JNVM.root.put("simple", new Simple(42));
  if (!rt->root().Exists("simple")) {
    Simple s(*rt, 42);
    rt->root().Put("simple", &s);
  }

  // Simple s = (Simple)JNVM.root.get("simple");
  auto s = rt->root().GetAs<Simple>("simple");

  s->Inc();     // s.inc();
  s->y = 42;    // s.y = 42;  (transient)

  std::printf("s.x   = %d\n", s->X());     // 43
  std::printf("s.msg = %s\n", s->Msg().c_str());

  // JNVM.root.put("simple", new Simple(24));
  Simple replacement(*rt, 24);
  rt->root().Put("simple", &replacement);

  // JNVM.free(s.msg); JNVM.free(s);
  rt->FreeRef(s->MsgRef());
  rt->Free(*s);

  // Simulate a restart: reopen the same device and read the new root.
  rt.reset();
  rt = JnvmRuntime::Open(&pmem);
  auto after = rt->root().GetAs<Simple>("simple");
  std::printf("after restart: s.x = %d, s.msg = %s\n", after->X(),
              after->Msg().c_str());
  std::printf("recovery: %llu objects traversed, %llu blocks freed\n",
              static_cast<unsigned long long>(rt->recovery_report().traversed_objects),
              static_cast<unsigned long long>(rt->recovery_report().sweep.freed_blocks));
  return 0;
}
