// Tour of the Infinispan-like store with its pluggable persistence backends
// (§5.1), under a small YCSB-A burst each.
//
//   $ ./kvstore_tour
#include <cstdio>

#include "src/store/fs_backend.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/pcj_backend.h"
#include "src/store/volatile_backend.h"
#include "src/ycsb/runner.h"

namespace {

void RunOne(const char* label, jnvm::store::KvStore* kv,
            const jnvm::ycsb::WorkloadSpec& spec) {
  jnvm::ycsb::LoadPhase(kv, spec);
  const auto r = jnvm::ycsb::RunPhase(kv, spec, 20'000, /*threads=*/1, /*seed=*/1);
  std::printf("%-8s  %9.0f ops/s   read %s\n", label, r.throughput_ops_s,
              r.read.Summary().c_str());
}

}  // namespace

int main() {
  auto spec = jnvm::ycsb::WorkloadSpec::A();
  spec.record_count = 5'000;
  spec.fields = 10;
  spec.field_len = 100;

  std::printf("YCSB-A, %llu records x %u fields x %u B, one backend per line\n\n",
              static_cast<unsigned long long>(spec.record_count), spec.fields,
              spec.field_len);

  // J-PDT: hand-crafted persistent data types, no cache needed.
  {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 256 << 20;
    jnvm::nvm::PmemDevice dev(o);
    auto rt = jnvm::core::JnvmRuntime::Format(&dev);
    jnvm::store::JpdtBackend backend(rt.get());
    jnvm::store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    jnvm::store::KvStore kv(&backend, nullptr, sopts);
    RunOne("J-PDT", &kv, spec);
  }

  // J-PFA: failure-atomic blocks, generic structure.
  {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 256 << 20;
    jnvm::nvm::PmemDevice dev(o);
    auto rt = jnvm::core::JnvmRuntime::Format(&dev);
    jnvm::store::JpfaBackend backend(rt.get(), "store.jpfa", 2 * spec.record_count);
    jnvm::store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    jnvm::store::KvStore kv(&backend, nullptr, sopts);
    RunOne("J-PFA", &kv, spec);
  }

  // FS: marshalled records through a DAX file system, 10% cache.
  {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 256 << 20;
    jnvm::nvm::PmemDevice dev(o);
    jnvm::fs::FsOptions fopts;
    jnvm::fs::NvmFs fs(&dev, 0, 256 << 20, fopts);
    jnvm::store::FsBackend backend(&fs, "FS");
    jnvm::gcsim::ManagedHeap gc(jnvm::gcsim::GcOptions{});
    jnvm::store::StoreOptions sopts;
    sopts.cache_ratio = 0.10;
    sopts.expected_records = spec.record_count;
    jnvm::store::KvStore kv(&backend, &gc, sopts);
    RunOne("FS", &kv, spec);
  }

  // PCJ: PMDK transactions behind simulated JNI crossings.
  {
    jnvm::nvm::DeviceOptions o;
    o.size_bytes = 256 << 20;
    jnvm::nvm::PmemDevice dev(o);
    jnvm::pmdkx::PmdkPool pool(&dev, 0, 256 << 20);
    jnvm::store::PcjOptions popts;
    popts.nbuckets = 2 * spec.record_count;
    jnvm::store::PcjBackend backend(&pool, popts);
    jnvm::store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    jnvm::store::KvStore kv(&backend, nullptr, sopts);
    RunOne("PCJ", &kv, spec);
  }

  // Volatile: persistence disabled, records in the managed heap.
  {
    jnvm::gcsim::ManagedHeap gc(jnvm::gcsim::GcOptions{});
    jnvm::store::VolatileBackend backend(&gc);
    jnvm::store::StoreOptions sopts;
    sopts.cache_ratio = 0.0;
    jnvm::store::KvStore kv(&backend, nullptr, sopts);
    RunOne("Volatile", &kv, spec);
  }

  return 0;
}
