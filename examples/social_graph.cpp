// A persistent social-graph store — the "big data analytics platform"
// motivation of the paper's introduction, built from J-PDT parts:
//
//   * users        — PLongHashMap: user id -> PUser (profile + adjacency)
//   * adjacency    — PExtArray of references to followed users
//   * name index   — PStringTreeMap: display name -> PUser (ordered; range
//                    scans answer prefix queries)
//
// Demonstrates composed persistent structures, liveness-by-reachability
// (deleting a user = unlink everywhere + one explicit free, §2.2.2: few
// deletion sites), a restart with mirror rebuild, and an analytics pass
// (2-hop reach) running straight off NVMM through proxies.
//
//   $ ./social_graph
#include <cstdio>
#include <unordered_set>

#include "src/core/integrity.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"

using namespace jnvm;
using core::ClassInfo;
using core::Handle;
using core::JnvmRuntime;
using core::ObjectView;
using core::RefVisitor;
using core::Resurrect;

// @Persistent class User { long id; PString name; PExtArray follows; }
class PUser final : public core::PObject {
 public:
  static const ClassInfo* Class() {
    static const ClassInfo* info =
        RegisterClass(core::MakeClassInfo<PUser>("graph.PUser", &PUser::Trace));
    return info;
  }

  explicit PUser(Resurrect) {}
  PUser(JnvmRuntime& rt, int64_t id, const std::string& name) {
    AllocatePersistent(rt, Class(), kL.bytes);
    WriteField<int64_t>(kL.off[0], id);
    pdt::PString pname(rt, name);
    pname.Validate();
    WritePObject(kL.off[1], &pname);
    pdt::PExtArray follows(rt, 4);
    follows.Pwb();
    follows.Validate();
    WritePObject(kL.off[2], &follows);
    Pwb();
  }

  int64_t Id() const { return ReadField<int64_t>(kL.off[0]); }
  std::string Name() const { return ReadPObjectAs<pdt::PString>(kL.off[1])->Str(); }
  Handle<pdt::PExtArray> Follows() const {
    return ReadPObjectAs<pdt::PExtArray>(kL.off[2]);
  }

  static void Trace(ObjectView& v, RefVisitor& r) {
    r.VisitRef(v, kL.off[1]);
    r.VisitRef(v, kL.off[2]);
  }

 private:
  static constexpr auto kL =
      core::PackFields<3>({8, core::kRefField, core::kRefField});
};

namespace {

// 2-hop reach: |{w : v follows u, u follows w}| — an analytics pass that
// dereferences proxies straight into NVMM, no marshalling anywhere.
size_t TwoHopReach(PUser& v) {
  std::unordered_set<int64_t> reach;
  const auto follows = v.Follows();
  for (uint64_t i = 0; i < follows->Size(); ++i) {
    const auto mid = std::static_pointer_cast<PUser>(follows->Get(i));
    const auto second = mid->Follows();
    for (uint64_t j = 0; j < second->Size(); ++j) {
      reach.insert(std::static_pointer_cast<PUser>(second->Get(j))->Id());
    }
  }
  reach.erase(v.Id());
  return reach.size();
}

}  // namespace

int main() {
  nvm::DeviceOptions dopts;
  dopts.size_bytes = 64 << 20;
  nvm::PmemDevice pmem(dopts);

  {
    auto rt = JnvmRuntime::Format(&pmem);
    pdt::PLongHashMap users(*rt, 256);
    users.Pwb();
    users.Validate();
    rt->root().Put("graph.users", &users);
    pdt::PStringTreeMap by_name(*rt, 256);
    by_name.Pwb();
    by_name.Validate();
    rt->root().Put("graph.by_name", &by_name);

    // Build a small world: 100 users, each following ~5 others.
    const char* first_names[] = {"ada", "grace", "edsger", "barbara", "donald",
                                 "leslie", "tony", "john", "maurice", "frances"};
    std::vector<Handle<PUser>> handles;
    for (int64_t id = 0; id < 100; ++id) {
      const std::string name =
          std::string(first_names[id % 10]) + "_" + std::to_string(id);
      PUser u(*rt, id, name);
      u.Pwb();
      users.Put(id, &u, /*free_old_value=*/false);
      by_name.Put(name, &u, /*free_old_value=*/false);
      handles.push_back(users.GetAs<PUser>(id));
    }
    Xorshift rng(7);
    for (auto& u : handles) {
      const auto follows = u->Follows();
      for (int e = 0; e < 5; ++e) {
        follows->Append(handles[rng.NextBelow(100)].get());
      }
    }
    std::printf("built a graph of %zu users, ~5 follows each\n", users.Size());

    // Delete one user — the paper's point (§2.2.2): deletion is a rare,
    // explicit, well-defined path. Unlink from both indexes, then free.
    const auto victim = users.GetAs<PUser>(13);
    const std::string victim_name = victim->Name();
    // Remove the profile from every follower list (unlink-before-free).
    for (auto& u : handles) {
      const auto follows = u->Follows();
      for (uint64_t i = 0; i < follows->Size(); ++i) {
        if (follows->GetRaw(i) == victim->addr()) {
          follows->Set(i, nullptr);
        }
      }
    }
    by_name.Remove(victim_name, /*free_value=*/false);
    users.Remove(13, /*free_value=*/true);  // frees the PUser structure
    std::printf("deleted user 13 (%s): one explicit deletion site\n",
                victim_name.c_str());
  }

  // Restart: indexes rebuild their mirrors from NVMM.
  auto rt = JnvmRuntime::Open(&pmem);
  const auto users = rt->root().GetAs<pdt::PLongHashMap>("graph.users");
  const auto by_name = rt->root().GetAs<pdt::PStringTreeMap>("graph.by_name");
  std::printf("after restart: %zu users, %zu name-index entries, recovery "
              "traversed %llu objects\n",
              users->Size(), by_name->Size(),
              static_cast<unsigned long long>(
                  rt->recovery_report().traversed_objects));

  // Prefix query on the ordered index: every "grace_*".
  std::printf("name prefix scan 'grace_':");
  by_name->ForEachRange("grace_", "grace`", [](const std::string& name, auto) {
    std::printf(" %s", name.c_str());
  });
  std::printf("\n");

  // Analytics straight off NVMM.
  const auto u42 = users->GetAs<PUser>(42);
  std::printf("user %s 2-hop reach: %zu users\n", u42->Name().c_str(),
              TwoHopReach(*u42));

  const auto audit = core::VerifyHeapIntegrity(*rt);
  std::printf("integrity: %s\n", audit.ok() ? "ok" : audit.Summary().c_str());
  return audit.ok() ? 0 : 1;
}
